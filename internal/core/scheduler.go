package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/rdf"
)

// execTask is one schedulable unit of a query: a plan operator plus
// its input dependencies. Tasks form a tree mirroring the plan; a task
// becomes runnable when every dependency has produced its relation.
type execTask struct {
	node   *plan.Node
	deps   []*execTask
	parent *execTask
	// pending counts unfinished dependencies; the task is dispatched
	// when it reaches zero.
	pending int32
	// tainted marks a task whose subtree contains a blocked task — it
	// will never run this round and resolves as skipped.
	tainted atomic.Bool
	// blocked marks a task the adaptive pause gate stopped: its virtual
	// start is at or after a known re-plan trigger's completion, so it
	// belongs to the re-planned remainder.
	blocked bool
	// executed reports the task ran (successfully or as a post-failure
	// no-op).
	executed bool
	// discarded marks a task that ran before the pause point was known
	// but virtually starts at or after it: its result and stages are
	// dropped and its work is re-planned, exactly as if the gate had
	// caught it (the driver cancelling a just-queued stage).
	discarded bool

	// start is the task's virtual start time: max of the round floor,
	// the query start cost and its dependencies' completions.
	start time.Duration
	// rel is the task's output relation, nil until the task ran (or
	// forever, when execution failed before it could run).
	rel *engine.Relation
	// done is the task's virtual completion time: start plus the task's
	// own stage time (plus recovery, under fault injection).
	done time.Duration
	// stages is the task's priced stage trace.
	stages []cluster.StageRecord

	// xsum is the delivered exchange checksum of the task's output in
	// the packed-uint64 wire format, possibly corrupted in flight by the
	// fault plan; the consumer verifies it against the payload before
	// reading. Guarded by hasXsum and only set under an active fault
	// plan — the fault-free path never computes checksums.
	xsum    uint64
	hasXsum bool
}

// boundInput wires one materialized intermediate into the next round:
// the relation a Bound leaf reads, its virtual completion time, the
// executed node (in its round's plan) the corrected plan grafts back,
// and the measured leaf statistics, reused verbatim if the fragment is
// re-bound by a later round's re-plan (the relation never changes, so
// re-scanning it would recompute identical numbers).
type boundInput struct {
	rel   *engine.Relation
	done  time.Duration
	round int
	node  *plan.Node
	leaf  plan.BoundLeaf
}

// roundRun is one execution round of the adaptive loop: a plan (the
// original on round zero, a re-planned remainder afterwards), its
// per-round observation, the bound inputs its Bound leaves read, and
// the virtual-time floor no task of the round may start before (the
// re-plan splice point).
type roundRun struct {
	plan  *plan.Plan
	obs   *plan.Observation
	bound []boundInput
	floor time.Duration
	root  *execTask
	tasks []*execTask
	// idx is the round's position in the adaptive sequence; fault
	// decisions key on (round, node ID) so a re-planned round rolls
	// fresh fates for its tasks.
	idx int
	// pauseAt is the round's re-plan pause point: the minimum virtual
	// completion time over executed operators whose observed
	// cardinality missed its estimate beyond the re-plan bound
	// (math.MaxInt64 while no trigger fired). Tasks virtually starting
	// at or after it belong to the re-planned remainder. The minimum
	// over completed candidates is interleaving-independent — a task's
	// virtual times never depend on pool timing, and any candidate
	// observed late necessarily completes after the earliest one — so
	// the executed/remainder partition is deterministic.
	pauseAt atomic.Int64
}

// pause folds a trigger's completion time into the round's pause point.
func (rr *roundRun) pause(done time.Duration) {
	for {
		cur := rr.pauseAt.Load()
		if int64(done) >= cur || rr.pauseAt.CompareAndSwap(cur, int64(done)) {
			return
		}
	}
}

// ReplanEvent records one adaptive re-planning decision for EXPLAIN
// and /stats: which node's actual blew past its estimate, by how much,
// and what the re-planner did about it.
type ReplanEvent struct {
	// Round is the execution round the trigger fired in (1-based: the
	// first re-plan ends round 1).
	Round int
	// Trigger describes the mis-estimated executed node.
	Trigger string
	// Est and Actual are the trigger node's estimated and observed
	// cardinalities; Ratio is the error factor between them.
	Est    float64
	Actual int64
	Ratio  float64
	// Adopted reports whether the corrected remainder replaced the
	// static one (a re-plan is adopted only when its priced saving
	// exceeds the re-planning charge).
	Adopted bool
	// OldCrit and NewCrit are the priced critical paths of the static
	// and chosen remainders.
	OldCrit, NewCrit time.Duration
	// OldRemainder and NewRemainder render the two remainder plans.
	OldRemainder, NewRemainder string
}

// scheduler executes one physical plan as a task DAG on a bounded
// worker pool, with adaptive mid-query re-planning layered on top.
// Independent subtrees run concurrently, both for real and on the
// virtual clock, exactly as before; additionally, every join checks
// its inputs' observed cardinalities against their estimates before it
// runs. A join whose input missed by more than the re-plan bound does
// not run — it blocks, its ancestors resolve as skipped, and when the
// round quiesces the unexecuted remainder is re-planned over the
// materialized intermediates (plan.Replan) and executed as the next
// round. Because the block decision depends only on deterministic
// per-node actuals — never on pool interleaving — the partition into
// executed and re-planned work, and therefore the final plan and its
// simulated time, is identical across runs and across concurrency
// levels.
//
// All mutable state is per-execution, so Store.Query remains safe for
// concurrent callers sharing cached plans.
type scheduler struct {
	store   *Store
	nodes   []*Node
	filters []compiledFilter
	opts    QueryOptions
	ctx     context.Context
	// startCost is the per-query planning charge; every leaf task
	// starts after it.
	startCost time.Duration

	// Adaptive re-planning inputs: the trigger bound (0 disables), the
	// filter/projection description of the query, and the pricing the
	// re-planner shares with the static planner.
	replanThreshold float64
	filterSpecs     []plan.FilterSpec
	projection      []string
	distinct        bool
	costs           plan.Costs
	replanCharge    time.Duration

	// dist, when non-nil, delegates scan and exchange kernels to shard
	// processes. Streaming, fault injection and re-planning are forced
	// off by QueryContext in this mode, so only the fault-free run()
	// path ever sees it.
	dist DistSession

	rounds []*roundRun
	events []ReplanEvent

	completed  atomic.Int64
	totalTasks atomic.Int64

	failed  atomic.Bool
	errOnce sync.Once
	err     error

	// Fault injection: the active fault plan (nil keeps execution on the
	// unchanged fault-free hot path — no checksums, no attempt
	// bookkeeping), the per-task attempt budget, the base retry backoff
	// and the straggler-speculation multiple (0 disables speculation).
	faults       *cluster.FaultPlan
	faultSalt    uint64
	maxAttempts  int
	retryBackoff time.Duration
	specFactor   float64
	res          resilienceRecorder
}

// buildTasks flattens the plan into tasks, children before parents.
func buildTasks(root *plan.Node) (rootTask *execTask, all []*execTask) {
	var walk func(n *plan.Node, parent *execTask) *execTask
	walk = func(n *plan.Node, parent *execTask) *execTask {
		t := &execTask{node: n, parent: parent, pending: int32(len(n.Children))}
		for _, c := range n.Children {
			t.deps = append(t.deps, walk(c, t))
		}
		all = append(all, t)
		return t
	}
	rootTask = walk(root, nil)
	return rootTask, all
}

// execute runs the adaptive loop — run a round to quiescence, re-plan
// the remainder if a trigger fired, splice, repeat — and returns the
// final root task. The loop terminates because every round keeps at
// least the trigger operator itself (its virtual start precedes the
// pause point by construction), so the unexecuted operator count
// strictly decreases.
func (sc *scheduler) execute(pl *plan.Plan) (*execTask, error) {
	round := &roundRun{plan: pl, obs: plan.NewObservation(pl)}
	round.pauseAt.Store(math.MaxInt64)
	if sc.faults != nil {
		round.obs.EnableAttempts()
	}
	sc.rounds = append(sc.rounds, round)
	for {
		if err := sc.runRound(round); err != nil {
			return nil, err
		}
		if round.pauseAt.Load() == math.MaxInt64 {
			if sc.faults != nil {
				// The root's own delivery to the driver is an exchange too:
				// verify it and recompute from lineage on corruption, so the
				// epilogue always reads a clean payload.
				extra, err := sc.verifyInput(round.root)
				if err != nil {
					return nil, err
				}
				round.root.done += extra
			}
			return round.root, nil
		}
		next, err := sc.replan(round)
		if err != nil {
			return nil, err
		}
		next.idx = round.idx + 1
		if sc.faults != nil {
			next.obs.EnableAttempts()
		}
		sc.rounds = append(sc.rounds, next)
		round = next
	}
}

// runRound executes one round's DAG until quiescence: every task is
// executed, blocked (virtually starting at or after a known pause
// point), or skipped (downstream of a blocked task). After quiescence
// tasks that ran before the final pause point was known but virtually
// start at or after it are discarded, so the executed/remainder
// partition depends only on virtual times and recorded actuals — never
// on pool interleaving.
func (sc *scheduler) runRound(rr *roundRun) error {
	rootTask, tasks := buildTasks(rr.plan.Root)
	rr.root, rr.tasks = rootTask, tasks
	sc.totalTasks.Add(int64(len(tasks)))

	par := sc.opts.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(tasks) {
		par = len(tasks)
	}

	// The ready queue is buffered to the task count so resolutions can
	// enqueue parents without blocking.
	ready := make(chan *execTask, len(tasks))
	quiesced := make(chan struct{})
	remaining := int32(len(tasks))

	// resolve retires a task (executed, blocked or skipped exactly
	// once), taints the parent when the task did not execute, and
	// dispatches the parent once its last dependency resolves.
	var dispatch func(t *execTask)
	resolve := func(t *execTask) {
		if !t.executed && t.parent != nil {
			t.parent.tainted.Store(true)
		}
		if p := t.parent; p != nil && atomic.AddInt32(&p.pending, -1) == 0 {
			dispatch(p)
		}
		if atomic.AddInt32(&remaining, -1) == 0 {
			close(quiesced)
		}
	}
	dispatch = func(t *execTask) {
		if t.tainted.Load() {
			resolve(t) // skipped: an input subtree is blocked
			return
		}
		t.start = sc.taskStart(rr, t)
		// The pause gate: a task starting at or after a known trigger's
		// completion belongs to the re-planned remainder. A trigger
		// discovered after this check retroactively discards the task
		// instead — same partition, some wasted (real) work.
		if sc.replanThreshold > 0 && !sc.failed.Load() && int64(t.start) >= rr.pauseAt.Load() {
			t.blocked = true
			resolve(t)
			return
		}
		ready <- t
	}

	// Seed the leaves before any worker starts: a leaf dispatch only
	// enqueues (leaves have no inputs to taint or pause on), and doing
	// it first keeps the initial pending reads free of concurrent
	// resolutions.
	for _, t := range tasks {
		if t.pending == 0 {
			dispatch(t)
		}
	}
	for i := 0; i < par; i++ {
		go func() {
			for {
				select {
				case t := <-ready:
					sc.run(rr, t)
					t.executed = true
					resolve(t)
				case <-quiesced:
					return
				}
			}
		}()
	}
	<-quiesced

	if sc.err == nil && sc.replanThreshold > 0 {
		if pauseAt := rr.pauseAt.Load(); pauseAt != math.MaxInt64 {
			// Retroactively discard work the gate could not catch: tasks
			// that ran but virtually start at or after the pause point.
			// Anything consuming a discarded result starts even later,
			// so the discarded set is closed downstream.
			for _, t := range rr.tasks {
				if t.executed && int64(t.start) >= pauseAt {
					t.discarded = true
					t.stages = nil
				}
			}
		} else {
			// No trigger fired: the retained intermediates (kept alive
			// in case they became bound leaves) are garbage now — only
			// the root's relation feeds the epilogue.
			for _, t := range rr.tasks {
				if t != rr.root {
					t.rel = nil
				}
			}
		}
	}
	return sc.err
}

// taskStart computes a task's virtual start: the round floor and query
// start cost, then its dependencies' completions. Bound leaves start
// at zero — their work predates the round and they are never paused.
func (sc *scheduler) taskStart(rr *roundRun, t *execTask) time.Duration {
	if t.node.Op == plan.OpBound {
		return 0
	}
	start := sc.startCost
	if rr.floor > start {
		start = rr.floor
	}
	for _, d := range t.deps {
		if d.done > start {
			start = d.done
		}
	}
	return start
}

// obsErrRatio is a node's estimation-error factor under the round's
// observation: max(est,1)/max(actual,1) or its inverse, whichever
// exceeds 1; nodes without a recorded actual report 1.
func obsErrRatio(o *plan.Observation, n *plan.Node) float64 {
	act := o.Actual(n)
	if act < 0 {
		return 1
	}
	est := math.Max(n.Est, 1)
	a := math.Max(float64(act), 1)
	if est > a {
		return est / a
	}
	return a / est
}

// fail records the first error and stops further work.
func (sc *scheduler) fail(err error) {
	sc.errOnce.Do(func() { sc.err = err })
	sc.failed.Store(true)
}

// run executes one task against its own virtual clock and records its
// observed cardinality and completion time. Tasks scheduled after a
// failure complete immediately without doing work, so the DAG drains.
func (sc *scheduler) run(rr *roundRun, t *execTask) {
	if sc.failed.Load() {
		return
	}
	if sc.ctx != nil {
		if cerr := sc.ctx.Err(); cerr != nil {
			sc.fail(&CancelError{
				Err:            cerr,
				CompletedTasks: int(sc.completed.Load()),
				TotalTasks:     int(sc.totalTasks.Load()),
			})
			return
		}
	}
	if t.node.Op == plan.OpBound {
		// The relation was materialized by an earlier round; adopt it
		// and its completion time without charging anything. Under fault
		// injection the payload was verified (and any corruption
		// recovered) when the round boundary bound it, so its delivered
		// checksum is clean by construction.
		b := rr.bound[t.node.Leaf]
		t.rel = b.rel
		t.done = b.done
		rr.bound[t.node.Leaf].rel = nil
		if sc.faults != nil {
			t.xsum, t.hasXsum = t.rel.Checksum(), true
		}
		rr.obs.Record(t.node, int64(t.rel.NumRows()))
		sc.completed.Add(1)
		return
	}
	if sc.faults != nil {
		sc.runResilient(rr, t)
		return
	}
	clk := cluster.NewClock()
	e := engine.NewExec(sc.store.cluster, clk)
	// The per-query planning cost is charged once at the scheduler
	// level, not per task.
	e.StartCost = 0
	e.BroadcastThreshold = sc.opts.BroadcastThreshold
	e.Dist = sc.dist

	rel, err := sc.execOp(e, t, taskInputs(t))
	if err != nil {
		if sc.dist != nil {
			err = wrapShardErr(err, nodeDesc(t.node), t.start,
				int(sc.completed.Load()), int(sc.totalTasks.Load()))
		}
		sc.fail(err)
		return
	}
	t.rel = rel
	rr.obs.Record(t.node, int64(rel.NumRows()))
	t.stages = clk.Stages()
	sc.releaseInputs(t)
	elapsed := clk.Elapsed()
	if elapsed <= 0 {
		// Zero-cost operators (empty-table shortcuts) still complete
		// strictly after they start, so the pause point — the trigger's
		// completion — always keeps the trigger itself executed.
		elapsed = 1
	}
	t.done = t.start + elapsed
	sc.completed.Add(1)
	sc.checkTrigger(rr, t)
}

// releaseInputs eagerly frees a completed task's consumed inputs in
// non-adaptive runs, so large intermediates do not outlive the join
// that read them. Adaptive runs keep them until the round quiesces — a
// later trigger may discard this task and hand its inputs to the
// re-planner as bound leaves — and release everything unneeded at the
// round boundary. Under fault injection a freed input can still be
// recovered: lineage recomputation re-executes its subtree on demand.
func (sc *scheduler) releaseInputs(t *execTask) {
	if sc.replanThreshold > 0 {
		return
	}
	for _, d := range t.deps {
		d.rel = nil
	}
}

// checkTrigger fires the adaptive pause when a scan or join's observed
// cardinality missed its estimate beyond the bound: the frontier pauses
// at the trigger's virtual completion and everything virtually starting
// later is re-planned. (Projection and DISTINCT estimates are
// derivative; their errors always trace back to a scan or join below.)
func (sc *scheduler) checkTrigger(rr *roundRun, t *execTask) {
	if sc.replanThreshold > 0 && (t.node.Op == plan.OpJoin || t.node.Op == plan.OpScan) &&
		obsErrRatio(rr.obs, t.node) > sc.replanThreshold {
		rr.pause(t.done)
	}
}

// taskKey identifies one task for the fault plan: deterministic in the
// round index and the node's stable plan ID, independent of pool
// interleaving. The scheduler XORs in its per-query fault salt so two
// queries whose plans happen to share small node IDs still draw
// independent fault schedules.
func taskKey(roundIdx, nodeID int) uint64 {
	return uint64(roundIdx)<<32 | uint64(uint32(nodeID))
}

// corruptFlip is the bit pattern a corrupted exchange XORs into the
// delivered checksum, guaranteeing a detectable mismatch.
const corruptFlip uint64 = 0xDEADBEEFCAFEF00D

// runResilient executes one task under the active fault plan: the
// attempt loop retries injected failures with capped exponential
// virtual backoff (re-executing the operator for real each time), the
// straggler detector launches a speculative duplicate when an attempt
// runs past specFactor times the median sibling time, and every input
// is checksum-verified before reading — a corrupted exchange recomputes
// its producer from lineage. All recovery is priced into the task's
// virtual completion, so SimTime reflects recovery cost; exhausting the
// attempt budget aborts the query with a typed *TaskFailedError
// carrying the attempt trace.
//
// Every fault decision is a pure function of (seed, round, node ID,
// attempt, virtual start), so the recovery schedule — and therefore
// SimTime — is deterministic across runs and concurrency levels.
func (sc *scheduler) runResilient(rr *roundRun, t *execTask) {
	fp := sc.faults
	workers := sc.store.cluster.Workers()
	key := taskKey(rr.idx, t.node.ID) ^ sc.faultSalt

	// Consumer-side integrity check: verify each input's delivered
	// checksum against its payload before reading it; recovery time is
	// sequenced before this task's own attempts.
	vstart := t.start
	for _, d := range t.deps {
		extra, err := sc.verifyInput(d)
		if err != nil {
			sc.fail(err)
			return
		}
		vstart += extra
	}

	var trace []TaskAttempt
	for attempt := 1; ; attempt++ {
		dec := fp.Decide(key, attempt, vstart, workers)
		clk := cluster.NewClock()
		e := engine.NewExec(sc.store.cluster, clk)
		e.StartCost = 0
		e.BroadcastThreshold = sc.opts.BroadcastThreshold
		rel, err := sc.execOp(e, t, taskInputs(t))
		if err != nil {
			// A real execution error, not an injected fault: fail fast.
			sc.fail(err)
			return
		}
		elapsed := clk.Elapsed()
		if elapsed <= 0 {
			elapsed = 1
		}
		sc.res.attempts.Add(1)

		if dec.Fail {
			// The attempt dies after consuming its priced time; the retry
			// backs off exponentially and rotates to another worker.
			outcome := AttemptFailed
			if dec.Outage {
				outcome = AttemptOutage
			}
			trace = append(trace, TaskAttempt{
				Attempt: attempt, Worker: dec.Worker,
				Start: vstart, End: vstart + elapsed, Outcome: outcome,
			})
			if attempt >= sc.maxAttempts {
				sc.res.taskFailed.Add(1)
				sc.fail(&TaskFailedError{
					Task:           nodeDesc(t.node),
					Attempts:       trace,
					CompletedTasks: int(sc.completed.Load()),
					TotalTasks:     int(sc.totalTasks.Load()),
				})
				return
			}
			sc.res.retries.Add(1)
			wait := retryDelay(sc.retryBackoff, attempt)
			sc.res.addRecovery(elapsed + wait)
			vstart += elapsed + wait
			continue
		}

		done := vstart + elapsed
		if dec.DelayFactor > 1 {
			// Straggling attempt: its priced time stretches by the delay
			// factor. Sibling partition tasks of one operator are symmetric
			// in the simulator, so the attempt's own fault-free priced time
			// stands in for the median sibling time; the detector fires
			// when the straggler runs past specFactor times that median and
			// launches a speculative duplicate — first finisher wins.
			sc.res.stragglers.Add(1)
			slowDone := vstart + scaleDuration(elapsed, dec.DelayFactor)
			done = slowDone
			specWon := false
			if sf := sc.specFactor; sf > 0 && dec.DelayFactor > sf {
				specStart := vstart + scaleDuration(elapsed, sf)
				// The duplicate rolls its own fate (placement and straggler
				// delay; its attempt number is past the injected-failure
				// cap, so only an outage window can kill it).
				specDec := fp.Decide(key, attempt+specAttemptBase, specStart, workers)
				sc.res.specLaunch.Add(1)
				sc.res.attempts.Add(1)
				if !specDec.Fail {
					specDone := specStart + scaleDuration(elapsed, math.Max(specDec.DelayFactor, 1))
					if specDone < slowDone {
						specWon = true
						done = specDone
						sc.res.specWins.Add(1)
						trace = append(trace,
							TaskAttempt{Attempt: attempt, Worker: dec.Worker, Start: vstart, End: slowDone, Outcome: AttemptStragglerLost},
							TaskAttempt{Attempt: attempt, Worker: specDec.Worker, Start: specStart, End: specDone, Outcome: AttemptSpeculativeWin, Speculative: true})
					}
				}
			}
			if !specWon {
				trace = append(trace, TaskAttempt{
					Attempt: attempt, Worker: dec.Worker,
					Start: vstart, End: slowDone, Outcome: AttemptStraggler,
				})
			}
			sc.res.addRecovery(done - (vstart + elapsed))
		} else {
			trace = append(trace, TaskAttempt{
				Attempt: attempt, Worker: dec.Worker,
				Start: vstart, End: done, Outcome: AttemptOK,
			})
		}

		t.rel = rel
		t.stages = clk.Stages()
		t.done = done
		break
	}

	// Delivered checksum over the packed-uint64 payload: a corrupted
	// exchange flips bits in flight; the consumer detects the mismatch
	// and recomputes this task from lineage.
	sum := t.rel.Checksum()
	if fp.CorruptDelivery(key) {
		sum ^= corruptFlip
	}
	t.xsum, t.hasXsum = sum, true

	rr.obs.Record(t.node, int64(t.rel.NumRows()))
	rr.obs.RecordAttempts(t.node, len(trace))
	sc.releaseInputs(t)
	sc.completed.Add(1)
	sc.checkTrigger(rr, t)
}

// specAttemptBase offsets speculative duplicates into their own fault
// decision stream, far past any real attempt number.
const specAttemptBase = 1 << 16

// verifyInput checks a produced task's delivered checksum against its
// payload. On mismatch — the simulated exchange corrupted the relation
// in flight — the producer is re-executed from its lineage (inputs
// already freed by the eager-release policy are recursively recomputed;
// scans re-read the store), the re-delivery is marked clean, and the
// recomputation's priced time is returned for the consumer to sequence
// before its own work. A task's relation has exactly one consumer (the
// plan is a tree), so no locking is needed.
func (sc *scheduler) verifyInput(d *execTask) (time.Duration, error) {
	if !d.hasXsum || d.rel == nil || d.xsum == d.rel.Checksum() {
		return 0, nil
	}
	sc.res.checksums.Add(1)
	clk := cluster.NewClock()
	e := engine.NewExec(sc.store.cluster, clk)
	e.StartCost = 0
	e.BroadcastThreshold = sc.opts.BroadcastThreshold
	rel, err := sc.recompute(e, d)
	if err != nil {
		return 0, err
	}
	d.rel = rel
	d.xsum = rel.Checksum()
	elapsed := clk.Elapsed()
	if elapsed <= 0 {
		elapsed = 1
	}
	sc.res.addRecovery(elapsed)
	return elapsed, nil
}

// recompute re-executes a task's operator from its recorded lineage —
// the task tree itself: dependencies whose relations were eagerly freed
// are recursively recomputed (scans re-read the store), exactly the
// lineage-based recovery Spark performs for a lost partition. The
// transient input relations are not re-retained; only the requested
// task's output is returned.
func (sc *scheduler) recompute(e *engine.Exec, t *execTask) (*engine.Relation, error) {
	sc.res.recomputes.Add(1)
	if t.node.Op == plan.OpBound {
		// Bound relations are retained for their whole round, so reaching
		// one without a relation means the lineage chain is broken.
		if t.rel == nil {
			return nil, fmt.Errorf("core: bound leaf %s lost its relation during lineage recompute", nodeDesc(t.node))
		}
		return t.rel, nil
	}
	in := make([]*engine.Relation, len(t.deps))
	for i, d := range t.deps {
		if d.rel != nil {
			in[i] = d.rel
			continue
		}
		rel, err := sc.recompute(e, d)
		if err != nil {
			return nil, err
		}
		in[i] = rel
	}
	return sc.execOp(e, t, in)
}

// replan converts a quiesced round with blocked joins into the next
// round: the executed fragments feeding the unexecuted remainder
// become bound leaves (exact cardinality, distinct counts and key skew
// measured from the materialized rows), plan.Replan prices the
// corrected remainder against finishing the static one, and the chosen
// remainder — spliced at the trigger's virtual completion time plus
// the re-planning charge when adopted, timing-neutral when not — runs
// as the next round's DAG.
func (sc *scheduler) replan(rr *roundRun) (*roundRun, error) {
	pauseAt := time.Duration(rr.pauseAt.Load())
	unexec := make(map[int]bool)
	boundIdx := make(map[int]int)
	var bounds []plan.BoundLeaf
	var inputs []boundInput
	var trigger *execTask

	kept := func(t *execTask) bool { return t.executed && !t.discarded }
	curRound := len(sc.rounds) - 1
	var walk func(t *execTask) error
	walk = func(t *execTask) error {
		if kept(t) {
			// A materialized fragment the remainder consumes. Under fault
			// injection its delivery is verified here — crossing the round
			// boundary is the exchange — so every bound relation the next
			// round adopts is clean, with the recovery priced into the
			// fragment's completion time.
			if sc.faults != nil {
				extra, err := sc.verifyInput(t)
				if err != nil {
					return err
				}
				t.done += extra
			}
			idx := len(bounds)
			boundIdx[t.node.ID] = idx
			leaf := sc.boundLeaf(rr, t, idx)
			bounds = append(bounds, leaf)
			inputs = append(inputs, boundInput{rel: t.rel, done: t.done, round: curRound, node: t.node, leaf: leaf})
			t.rel = nil
			return nil
		}
		unexec[t.node.ID] = true
		for _, d := range t.deps {
			if err := walk(d); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(rr.root); err != nil {
		return nil, err
	}
	// The frontier's relations now live in the bound inputs; every
	// other retained relation (discarded work, fragments interior to a
	// kept subtree) is garbage.
	for _, t := range rr.tasks {
		t.rel = nil
	}

	// The trigger for the event record: the kept operator that set the
	// pause point (first in preorder on a tie).
	for _, t := range rr.tasks {
		if kept(t) && t.done == pauseAt && obsErrRatio(rr.obs, t.node) > sc.replanThreshold {
			if trigger == nil || t.node.ID < trigger.node.ID {
				trigger = t
			}
		}
	}
	if trigger == nil {
		return nil, fmt.Errorf("core: re-plan requested without a trigger node")
	}

	allowBushy := rr.plan.Mode == plan.ModeCost
	res := plan.Replan(rr.plan, plan.Remainder{Unexec: unexec, Bound: boundIdx}, bounds,
		sc.filterSpecs, sc.projection, sc.distinct, allowBushy, sc.costs, sc.replanCharge)

	sc.events = append(sc.events, ReplanEvent{
		Round:        len(sc.rounds),
		Trigger:      nodeDesc(trigger.node),
		Est:          trigger.node.Est,
		Actual:       rr.obs.Actual(trigger.node),
		Ratio:        obsErrRatio(rr.obs, trigger.node),
		Adopted:      res.Adopted,
		OldCrit:      res.OldCrit,
		NewCrit:      res.NewCrit,
		OldRemainder: res.Static.String(),
		NewRemainder: res.Plan.String(),
	})

	next := &roundRun{plan: res.Plan, obs: plan.NewObservation(res.Plan), bound: inputs}
	next.pauseAt.Store(math.MaxInt64)
	if res.Adopted {
		// The spliced remainder cannot start before the trigger was
		// observed and the re-planning charge paid. A rejected re-plan
		// keeps the static remainder and costs nothing, so its timing
		// is identical to never having paused.
		next.floor = pauseAt + sc.replanCharge
	}
	return next, nil
}

// boundLeaf measures one materialized fragment for the re-planner:
// exact cardinality, per-variable distinct counts and hottest-value
// fractions, and the layout the relation carries. A fragment that is
// already a Bound leaf (re-bound across rounds) reuses the statistics
// measured when it was first bound instead of re-scanning the
// unchanged relation.
func (sc *scheduler) boundLeaf(rr *roundRun, t *execTask, source int) plan.BoundLeaf {
	if t.node.Op == plan.OpBound {
		leaf := rr.bound[t.node.Leaf].leaf
		leaf.Source = source
		return leaf
	}
	dist, hot := relColumnStats(t.rel)
	return plan.BoundLeaf{
		Label:    nodeDesc(t.node),
		Vars:     append([]string(nil), t.node.Vars...),
		Rows:     int64(t.rel.NumRows()),
		Dist:     dist,
		Hot:      hot,
		PartCols: t.rel.PartitionCols(),
		Pats:     patsUnder(rr, t.node),
		Done:     t.done,
		Source:   source,
	}
}

// patsUnder collects the triple patterns of every scan the fragment
// rooted at n materialized (recursing through Bound leaves into the
// rounds that produced them), so the re-planner's sketch lookups can
// still resolve predicate pairs for joins of the intermediate.
func patsUnder(rr *roundRun, n *plan.Node) []plan.PatRef {
	var out []plan.PatRef
	var walk func(n *plan.Node)
	walk = func(n *plan.Node) {
		switch n.Op {
		case plan.OpScan:
			out = append(out, rr.plan.Leaves[n.Leaf].Pats...)
		case plan.OpBound:
			out = append(out, rr.bound[n.Leaf].leaf.Pats...)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(n)
	return out
}

// relColumnStats computes exact per-column distinct counts and
// hottest-value fractions of a materialized relation — the rebased
// statistics the re-planner estimates the remainder with.
func relColumnStats(rel *engine.Relation) (dist, hot map[string]float64) {
	schema := rel.Schema()
	total := rel.NumRows()
	dist = make(map[string]float64, len(schema))
	hot = make(map[string]float64, len(schema))
	for ci, col := range schema {
		counts := make(map[rdf.ID]int64, 64)
		var maxCount int64
		for p := 0; p < rel.Partitions(); p++ {
			for _, r := range rel.Part(p) {
				c := counts[r[ci]] + 1
				counts[r[ci]] = c
				if c > maxCount {
					maxCount = c
				}
			}
		}
		d := float64(len(counts))
		if d < 1 {
			d = 1
		}
		dist[col] = d
		if total > 0 {
			hot[col] = float64(maxCount) / float64(total)
		}
	}
	return dist, hot
}

// nodeDesc renders a node for re-plan events and bound-leaf labels.
func nodeDesc(n *plan.Node) string {
	if n.Label == "" {
		return strings.ToLower(n.Op.String())
	}
	if n.Op == plan.OpBound {
		return n.Label
	}
	return strings.ToLower(n.Op.String()) + " " + n.Label
}

// executedPlan assembles the plan the query actually executed: the
// final round's plan with every Bound leaf replaced by the executed
// fragment it stands for (recursively, across rounds), actuals stamped
// from the per-round observations. It is both the Result's EXPLAIN
// view and — after Rebase — the corrected entry the feedback plan
// cache stores.
func (sc *scheduler) executedPlan() *plan.Plan {
	var clone func(ri int, n *plan.Node) *plan.Node
	clone = func(ri int, n *plan.Node) *plan.Node {
		if n.Op == plan.OpBound {
			b := sc.rounds[ri].bound[n.Leaf]
			return clone(b.round, b.node)
		}
		c := *n
		c.Actual = sc.rounds[ri].obs.Actual(n)
		c.Attempts = sc.rounds[ri].obs.AttemptsOf(n)
		if len(n.Children) > 0 {
			c.Children = make([]*plan.Node, len(n.Children))
			for i, ch := range n.Children {
				c.Children[i] = clone(ri, ch)
			}
		}
		return &c
	}
	last := len(sc.rounds) - 1
	return sc.rounds[last].plan.WithRoot(clone(last, sc.rounds[last].plan.Root))
}

// appendTrace merges every round's executed stage records into the
// result clock in deterministic plan preorder (independent of the real
// interleaving the pool happened to run), with the re-planning charge
// of each adopted splice recorded between rounds.
func (sc *scheduler) appendTrace(clock *cluster.Clock) {
	for i, rr := range sc.rounds {
		if i > 0 && sc.events[i-1].Adopted {
			clock.Charge("adaptive re-plan", sc.replanCharge)
		}
		var walk func(t *execTask)
		walk = func(t *execTask) {
			for _, d := range t.deps {
				walk(d)
			}
			clock.Absorb(t.stages)
		}
		walk(rr.root)
	}
	if sc.faults != nil {
		// Recovery shows up in the trace as one aggregate record — the
		// stage list keeps the clean per-operator stages, and SimTime
		// (the critical path) already includes each task's recovery.
		if rec := time.Duration(sc.res.recoveryNS.Load()); rec > 0 {
			clock.Charge("fault recovery (retries, backoff, speculation, recompute)", rec)
		}
	}
}

// taskInputs gathers a task's dependency relations in child order —
// the inputs execOp evaluates over in normal execution. Lineage
// recomputation passes reconstructed relations instead.
func taskInputs(t *execTask) []*engine.Relation {
	if len(t.deps) == 0 {
		return nil
	}
	in := make([]*engine.Relation, len(t.deps))
	for i, d := range t.deps {
		in[i] = d.rel
	}
	return in
}

// execOp evaluates one plan operator over the given input relations
// (one per child, in child order). Inputs are passed explicitly rather
// than read off the task's dependencies so lineage recomputation can
// re-run an operator whose original inputs were freed.
func (sc *scheduler) execOp(e *engine.Exec, t *execTask, in []*engine.Relation) (*engine.Relation, error) {
	n := t.node
	switch n.Op {
	case plan.OpScan:
		var rel *engine.Relation
		var err error
		if sc.dist != nil {
			rel, err = sc.store.execDistScanNode(e, sc.dist, sc.nodes[n.Leaf], n.Filters, pickFilters(sc.filters, n.Filters))
		} else {
			rel, err = sc.store.execScanNode(e, sc.nodes[n.Leaf], n, pickFilters(sc.filters, n.Filters))
		}
		if err != nil {
			return nil, fmt.Errorf("core: executing %s: %w", sc.nodes[n.Leaf].Label(), err)
		}
		return rel, nil
	case plan.OpFilter:
		return applyResidualFilters(e, in[0], pickFilters(sc.filters, n.Filters))
	case plan.OpJoin:
		rel, err := e.JoinKeep(in[0], in[1], n.Children[1].Label, joinStrategy(n.Method), n.Keep)
		if err != nil {
			return nil, fmt.Errorf("core: joining %s: %w", n.Children[1].Label, err)
		}
		return rel, nil
	case plan.OpProject:
		return e.Project(in[0], n.Cols)
	case plan.OpDistinct:
		return e.Distinct(in[0])
	case plan.OpLeftJoin:
		rel, err := e.LeftJoin(in[0], in[1], n.Label)
		if err != nil {
			return nil, fmt.Errorf("core: left-joining %s: %w", n.Label, err)
		}
		return rel, nil
	case plan.OpUnion:
		return e.UnionAll(in...)
	case plan.OpTopK:
		return e.TopK(in[0], sc.store.topkLess(n), n.Limit, n.Offset)
	case plan.OpAggregate:
		counts := make([]engine.AggCount, len(n.CountVars))
		for i, v := range n.CountVars {
			counts[i] = engine.AggCount{Var: v, As: n.Vars[len(n.GroupCols)+i]}
		}
		return e.Aggregate(in[0], n.GroupCols, counts)
	default:
		return nil, fmt.Errorf("core: unknown plan operator %v", n.Op)
	}
}

// CancelError reports a query stopped by its context deadline or
// cancellation, with how much of the plan had executed — the partial
// trace info prost-serve returns alongside a 504.
type CancelError struct {
	// Err is the context error (context.DeadlineExceeded or
	// context.Canceled).
	Err error
	// CompletedTasks and TotalTasks count plan operators executed vs
	// scheduled when the cancellation was observed.
	CompletedTasks, TotalTasks int
}

// Error implements error.
func (e *CancelError) Error() string {
	return fmt.Sprintf("core: query canceled after %d/%d plan tasks: %v",
		e.CompletedTasks, e.TotalTasks, e.Err)
}

// Unwrap exposes the context error to errors.Is.
func (e *CancelError) Unwrap() error { return e.Err }
