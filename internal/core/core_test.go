package core

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

// testGraph builds a small social graph:
//
//	user0 follows user1, user2; likes prodA; age 25; name "alice"
//	user1 follows user2;        likes prodA, prodB; age 30; name "bob"
//	user2 likes prodB; age 25
//	prodA hasGenre g1; caption "letters"
//	prodB hasGenre g1, g2
const testNS = "http://example.org/"

func testGraph() *rdf.Graph {
	iri := func(s string) rdf.Term { return rdf.NewIRI(testNS + s) }
	lit := rdf.NewLiteral
	num := func(s string) rdf.Term { return rdf.NewTypedLiteral(s, rdf.XSDInteger) }

	g := rdf.NewGraph(0)
	add := func(s, p string, o rdf.Term) { g.AddSPO(iri(s), iri(p), o) }

	add("user0", "follows", iri("user1"))
	add("user0", "follows", iri("user2"))
	add("user0", "likes", iri("prodA"))
	add("user0", "age", num("25"))
	add("user0", "name", lit("alice"))

	add("user1", "follows", iri("user2"))
	add("user1", "likes", iri("prodA"))
	add("user1", "likes", iri("prodB"))
	add("user1", "age", num("30"))
	add("user1", "name", lit("bob"))

	add("user2", "likes", iri("prodB"))
	add("user2", "age", num("25"))

	add("prodA", "hasGenre", iri("g1"))
	add("prodA", "caption", lit("letters"))
	add("prodB", "hasGenre", iri("g1"))
	add("prodB", "hasGenre", iri("g2"))
	return g
}

func testStore(t *testing.T, inverse bool) *Store {
	t.Helper()
	c := cluster.MustNew(cluster.Config{Workers: 3, DefaultPartitions: 4})
	s, err := Load(testGraph(), Options{Cluster: c, BuildInversePT: inverse})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return s
}

// runQuery executes src under the given strategy and returns rendered
// sorted rows like "user0|user1".
func runQuery(t *testing.T, s *Store, src string, strategy Strategy) []string {
	t.Helper()
	q, err := sparql.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	res, err := s.Query(q, QueryOptions{Strategy: strategy})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	return renderRows(res)
}

func renderRows(res *Result) []string {
	var out []string
	for _, row := range res.SortedRows() {
		var parts []string
		for _, term := range row {
			v := term.Value
			v = strings.TrimPrefix(v, testNS)
			parts = append(parts, v)
		}
		out = append(out, strings.Join(parts, "|"))
	}
	return out
}

func eqStrings(t *testing.T, got, want []string, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d rows %v, want %d rows %v", label, len(got), got, len(want), want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("%s: row %d = %q, want %q", label, i, got[i], want[i])
		}
	}
}

func TestLoadReport(t *testing.T) {
	s := testStore(t, false)
	rep := s.LoadReport()
	if rep.Triples != 16 {
		t.Errorf("Triples = %d, want 16", rep.Triples)
	}
	if rep.VPTables != 6 {
		t.Errorf("VPTables = %d, want 6 (follows,likes,age,name,hasGenre,caption)", rep.VPTables)
	}
	if rep.PTColumns != 6 {
		t.Errorf("PTColumns = %d, want 6", rep.PTColumns)
	}
	if rep.SizeBytes <= 0 {
		t.Errorf("SizeBytes = %d, want > 0", rep.SizeBytes)
	}
	if rep.LoadTime <= 0 {
		t.Errorf("LoadTime = %v, want > 0", rep.LoadTime)
	}
	if rep.InputBytes <= 0 {
		t.Errorf("InputBytes = %d", rep.InputBytes)
	}
	// HDFS holds both VP and PT files.
	if got := len(s.FS().ListPrefix("/prost/vp/")); got == 0 {
		t.Errorf("no VP files on HDFS")
	}
	if got := len(s.FS().ListPrefix("/prost/pt/")); got == 0 {
		t.Errorf("no PT files on HDFS")
	}
}

func TestLoadRequiresCluster(t *testing.T) {
	if _, err := Load(testGraph(), Options{}); err == nil {
		t.Errorf("Load without cluster succeeded")
	}
}

func TestLoadDeduplicates(t *testing.T) {
	g := testGraph()
	// Duplicate every triple.
	for _, tr := range append([]rdf.Triple(nil), g.Triples()...) {
		g.Add(tr)
	}
	c := cluster.MustNew(cluster.Config{Workers: 2, DefaultPartitions: 2})
	s, err := Load(g, Options{Cluster: c})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if s.LoadReport().Triples != 16 {
		t.Errorf("Triples = %d after dup load, want 16", s.LoadReport().Triples)
	}
}

func TestMultiValuedDetection(t *testing.T) {
	s := testStore(t, false)
	pt := s.PropertyTable()
	likes, _ := s.Dictionary().Lookup(rdf.NewIRI(testNS + "likes"))
	age, _ := s.Dictionary().Lookup(rdf.NewIRI(testNS + "age"))
	if !pt.MultiValued(likes) {
		t.Errorf("likes not detected as multi-valued")
	}
	if pt.MultiValued(age) {
		t.Errorf("age wrongly detected as multi-valued")
	}
	if pt.Rows() != 5 {
		t.Errorf("PT rows = %d, want 5 (user0..2, prodA, prodB)", pt.Rows())
	}
}

// Every query must return the same rows under VP-only and Mixed: the
// strategies differ in cost, never in semantics.
var semanticsQueries = []struct {
	name string
	src  string
	want []string
}{
	{
		"single pattern",
		`SELECT ?a ?b WHERE { ?a <http://example.org/follows> ?b . }`,
		[]string{"user0|user1", "user0|user2", "user1|user2"},
	},
	{
		"star two patterns",
		`SELECT ?u ?p WHERE { ?u <http://example.org/likes> ?p . ?u <http://example.org/age> "25"^^<http://www.w3.org/2001/XMLSchema#integer> . }`,
		[]string{"user0|prodA", "user2|prodB"},
	},
	{
		"star with literal",
		`SELECT ?u WHERE { ?u <http://example.org/name> "alice" . ?u <http://example.org/age> ?a . }`,
		[]string{"user0"},
	},
	{
		"linear chain",
		`SELECT ?a ?g WHERE { ?a <http://example.org/likes> ?p . ?p <http://example.org/hasGenre> ?g . }`,
		[]string{"user0|g1", "user1|g1", "user1|g1", "user1|g2", "user2|g1", "user2|g2"},
	},
	{
		"snowflake",
		`SELECT ?u ?n ?g WHERE {
			?u <http://example.org/likes> ?p .
			?u <http://example.org/name> ?n .
			?p <http://example.org/hasGenre> ?g .
			?p <http://example.org/caption> ?c .
		}`,
		[]string{"user0|alice|g1", "user1|bob|g1"},
	},
	{
		"bound subject",
		`SELECT ?x WHERE { <http://example.org/user0> <http://example.org/follows> ?x . }`,
		[]string{"user1", "user2"},
	},
	{
		"bound object IRI",
		`SELECT ?u WHERE { ?u <http://example.org/likes> <http://example.org/prodB> . }`,
		[]string{"user1", "user2"},
	},
	{
		"distinct",
		`SELECT DISTINCT ?g WHERE { ?p <http://example.org/hasGenre> ?g . }`,
		[]string{"g1", "g2"},
	},
	{
		"filter numeric",
		`SELECT ?u WHERE { ?u <http://example.org/age> ?a . FILTER(?a > 27) }`,
		[]string{"user1"},
	},
	{
		"filter on star",
		`SELECT ?u ?a WHERE { ?u <http://example.org/age> ?a . ?u <http://example.org/name> ?n . FILTER(?a <= 25) }`,
		[]string{"user0|25"},
	},
	{
		"triangle complex",
		`SELECT ?a ?b WHERE {
			?a <http://example.org/follows> ?b .
			?a <http://example.org/likes> ?p .
			?b <http://example.org/likes> ?p .
		}`,
		[]string{"user0|user1", "user1|user2"},
	},
	{
		"empty predicate",
		`SELECT ?a WHERE { ?a <http://example.org/nonexistent> ?b . }`,
		nil,
	},
	{
		"empty constant",
		`SELECT ?a WHERE { ?a <http://example.org/follows> <http://example.org/ghost> . }`,
		nil,
	},
	{
		"star same var twice",
		`SELECT ?u ?x WHERE { ?u <http://example.org/likes> ?x . ?u <http://example.org/follows> ?x . }`,
		nil,
	},
}

func TestQuerySemanticsAcrossStrategies(t *testing.T) {
	s := testStore(t, false)
	for _, tt := range semanticsQueries {
		t.Run(tt.name, func(t *testing.T) {
			mixed := runQuery(t, s, tt.src, StrategyMixed)
			vpOnly := runQuery(t, s, tt.src, StrategyVPOnly)
			eqStrings(t, mixed, tt.want, "mixed")
			eqStrings(t, vpOnly, tt.want, "vp-only")
		})
	}
}

func TestQuerySemanticsWithInversePT(t *testing.T) {
	s := testStore(t, true)
	for _, tt := range semanticsQueries {
		t.Run(tt.name, func(t *testing.T) {
			got := runQuery(t, s, tt.src, StrategyMixedIPT)
			eqStrings(t, got, tt.want, "mixed+ipt")
		})
	}
}

func TestObjectStarUsesIPT(t *testing.T) {
	s := testStore(t, true)
	// Two patterns sharing the object variable ?p.
	q := sparql.MustParse(`SELECT ?a ?b WHERE {
		?a <http://example.org/likes> ?p .
		?b <http://example.org/likes> ?p .
	}`)
	tree, err := s.Translate(q, StrategyMixedIPT)
	if err != nil {
		t.Fatalf("Translate: %v", err)
	}
	found := false
	for _, n := range tree.Nodes {
		if n.Kind == NodeIPT {
			found = true
		}
	}
	if !found {
		t.Errorf("object star not grouped into IPT node:\n%s", tree)
	}
	res, err := s.Query(q, QueryOptions{Strategy: StrategyMixedIPT})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	// Compare against Mixed (semantics must agree).
	res2, err := s.Query(q, QueryOptions{Strategy: StrategyMixed})
	if err != nil {
		t.Fatalf("Query mixed: %v", err)
	}
	a, b := renderRows(res), renderRows(res2)
	eqStrings(t, a, b, "ipt vs mixed")
}

func TestMixedIPTRequiresInverseTable(t *testing.T) {
	s := testStore(t, false)
	q := sparql.MustParse(`SELECT ?a WHERE { ?a <http://example.org/likes> ?p . ?b <http://example.org/likes> ?p . }`)
	if _, err := s.Query(q, QueryOptions{Strategy: StrategyMixedIPT}); err == nil {
		t.Errorf("MixedIPT on store without inverse PT succeeded")
	}
}

func TestTranslateGroupsStarIntoPTNode(t *testing.T) {
	s := testStore(t, false)
	q := sparql.MustParse(`SELECT * WHERE {
		?u <http://example.org/likes> ?p .
		?u <http://example.org/age> ?a .
		?u <http://example.org/name> ?n .
		?p <http://example.org/hasGenre> ?g .
	}`)
	tree, err := s.Translate(q, StrategyMixed)
	if err != nil {
		t.Fatalf("Translate: %v", err)
	}
	var pt, vp int
	for _, n := range tree.Nodes {
		switch n.Kind {
		case NodePT:
			pt++
			if len(n.Patterns) != 3 {
				t.Errorf("PT node has %d patterns, want 3", len(n.Patterns))
			}
			if n.Key != "u" {
				t.Errorf("PT node key = %q, want u", n.Key)
			}
		case NodeVP:
			vp++
		}
	}
	if pt != 1 || vp != 1 {
		t.Errorf("nodes = %d PT + %d VP, want 1 + 1:\n%s", pt, vp, tree)
	}

	// VP-only: 4 VP nodes.
	tree2, err := s.Translate(q, StrategyVPOnly)
	if err != nil {
		t.Fatalf("Translate: %v", err)
	}
	if len(tree2.Nodes) != 4 {
		t.Errorf("VP-only tree has %d nodes, want 4", len(tree2.Nodes))
	}
	for _, n := range tree2.Nodes {
		if n.Kind != NodeVP {
			t.Errorf("VP-only tree contains %v node", n.Kind)
		}
	}
}

func TestLiteralPatternPrioritizedFirst(t *testing.T) {
	s := testStore(t, false)
	q := sparql.MustParse(`SELECT * WHERE {
		?a <http://example.org/follows> ?b .
		?b <http://example.org/name> "bob" .
	}`)
	tree, err := s.Translate(q, StrategyMixed)
	if err != nil {
		t.Fatalf("Translate: %v", err)
	}
	first := tree.Nodes[0]
	if !first.Patterns[0].HasLiteral() {
		t.Errorf("literal pattern not executed first:\n%s", tree)
	}
	if root := tree.Root(); root.Patterns[0].HasLiteral() {
		t.Errorf("literal pattern became the root:\n%s", tree)
	}
}

func TestRootIsLargestNode(t *testing.T) {
	s := testStore(t, false)
	// follows (3 tuples) vs hasGenre (3) vs likes (4): likes has the
	// most tuples and no constants anywhere, so a chain over them puts
	// the largest at the root. Use unconstrained chain:
	q := sparql.MustParse(`SELECT * WHERE {
		?u <http://example.org/likes> ?p .
		?p <http://example.org/hasGenre> ?g .
	}`)
	tree, err := s.Translate(q, StrategyMixed)
	if err != nil {
		t.Fatalf("Translate: %v", err)
	}
	root := tree.Root()
	if got := localName(root.Patterns[0].P.Term.Value); got != "likes" {
		t.Errorf("root = %s, want the largest table (likes):\n%s", got, tree)
	}
}

func TestNaiveOrderAblation(t *testing.T) {
	s := testStore(t, false)
	q := sparql.MustParse(`SELECT * WHERE {
		?a <http://example.org/follows> ?b .
		?b <http://example.org/name> "bob" .
	}`)
	res, err := s.Query(q, QueryOptions{NaiveOrder: true})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	// Naive order keeps written order: follows first.
	if got := localName(res.Tree.Nodes[0].Patterns[0].P.Term.Value); got != "follows" {
		t.Errorf("naive order first node = %s, want follows", got)
	}
	eqStrings(t, renderRows(res), []string{"user0|user1"}, "naive result")
}

func TestLimitAndOffset(t *testing.T) {
	s := testStore(t, false)
	q := sparql.MustParse(`SELECT ?a ?b WHERE { ?a <http://example.org/follows> ?b . } LIMIT 2`)
	res, err := s.Query(q, QueryOptions{})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("LIMIT 2 returned %d rows", len(res.Rows))
	}
}

func TestSimTimePositiveAndTraced(t *testing.T) {
	s := testStore(t, false)
	q := sparql.MustParse(`SELECT ?u WHERE { ?u <http://example.org/likes> ?p . ?u <http://example.org/age> ?a . }`)
	res, err := s.Query(q, QueryOptions{})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if res.SimTime <= 0 {
		t.Errorf("SimTime = %v", res.SimTime)
	}
	if len(res.Clock.Stages()) == 0 {
		t.Errorf("no stage trace recorded")
	}
	if !strings.Contains(res.Tree.String(), "PT(?u:") {
		t.Errorf("tree rendering missing PT node:\n%s", res.Tree)
	}
}

func TestVariablePredicateFallback(t *testing.T) {
	s := testStore(t, false)
	got := runQuery(t, s, `SELECT ?p WHERE { <http://example.org/prodA> ?p ?o . }`, StrategyMixed)
	eqStrings(t, got, []string{"caption", "hasGenre"}, "variable predicate")
}

func TestFullyBoundPatternActsAsExistenceCheck(t *testing.T) {
	s := testStore(t, false)
	got := runQuery(t, s, `SELECT ?x WHERE {
		<http://example.org/user0> <http://example.org/likes> <http://example.org/prodA> .
		?x <http://example.org/hasGenre> <http://example.org/g2> .
	}`, StrategyMixed)
	eqStrings(t, got, []string{"prodB"}, "existence check true")

	got = runQuery(t, s, `SELECT ?x WHERE {
		<http://example.org/user2> <http://example.org/likes> <http://example.org/prodA> .
		?x <http://example.org/hasGenre> <http://example.org/g2> .
	}`, StrategyMixed)
	eqStrings(t, got, nil, "existence check false")
}

func TestStrategyString(t *testing.T) {
	if StrategyMixed.String() != "mixed" || StrategyVPOnly.String() != "vp-only" || StrategyMixedIPT.String() != "mixed+ipt" {
		t.Errorf("strategy names wrong")
	}
	if NodeVP.String() != "VP" || NodePT.String() != "PT" || NodeIPT.String() != "IPT" || NodeTriples.String() != "TT" {
		t.Errorf("node kind names wrong")
	}
}

func TestMixedCostsLessThanVPOnlyOnStars(t *testing.T) {
	s := testStore(t, false)
	q := sparql.MustParse(`SELECT * WHERE {
		?u <http://example.org/likes> ?p .
		?u <http://example.org/age> ?a .
		?u <http://example.org/name> ?n .
	}`)
	mixed, err := s.Query(q, QueryOptions{Strategy: StrategyMixed})
	if err != nil {
		t.Fatalf("mixed: %v", err)
	}
	vp, err := s.Query(q, QueryOptions{Strategy: StrategyVPOnly})
	if err != nil {
		t.Fatalf("vp: %v", err)
	}
	if mixed.SimTime >= vp.SimTime {
		t.Errorf("star query: mixed (%v) not faster than vp-only (%v)", mixed.SimTime, vp.SimTime)
	}
}
