package core

// Tests for the concurrent execution path introduced with the DAG
// scheduler: plan-cache behaviour (hits, invalidation, option
// isolation) and race-detector coverage of Store.Query under parallel
// callers. The TestConcurrent* names are load-bearing: CI runs
// `go test -race ./internal/core -run Concurrent` as a fast gate.

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sparql"
	"repro/internal/stats"
	"repro/internal/watdiv"
)

const cacheTestQuery = `SELECT ?a ?g WHERE {
	?a <http://example.org/likes> ?p .
	?p <http://example.org/hasGenre> ?g .
}`

func TestPlanCacheHitOnRepeatedQuery(t *testing.T) {
	s := testStore(t, false)
	q := sparql.MustParse(cacheTestQuery)
	base := s.PlanCacheMetrics()
	for i := 0; i < 5; i++ {
		if _, err := s.Query(q, QueryOptions{}); err != nil {
			t.Fatalf("Query %d: %v", i, err)
		}
	}
	m := s.PlanCacheMetrics()
	if got := m.Misses - base.Misses; got != 1 {
		t.Errorf("misses = %d, want 1 (only the first run plans)", got)
	}
	if got := m.Hits - base.Hits; got != 4 {
		t.Errorf("hits = %d, want 4", got)
	}
	if m.Entries == 0 {
		t.Errorf("cache has no entries after a cached run")
	}
}

func TestPlanCacheMissAfterStatsReload(t *testing.T) {
	s := testStore(t, false)
	q := sparql.MustParse(cacheTestQuery)
	want := runQuery(t, s, cacheTestQuery, StrategyMixed)
	base := s.PlanCacheMetrics()

	// Reload the statistics from a perturbed view of the data: the
	// fingerprint changes, so the cached plan must not be reused.
	st := stats.Collect(s.triples[:len(s.triples)-1])
	oldFP := s.statsFingerprint()
	s.swapStats(st)
	if s.statsFingerprint() == oldFP {
		t.Fatalf("stats fingerprint unchanged after reload")
	}
	res, err := s.Query(q, QueryOptions{})
	if err != nil {
		t.Fatalf("Query after reload: %v", err)
	}
	m := s.PlanCacheMetrics()
	if got := m.Misses - base.Misses; got != 1 {
		t.Errorf("misses after stats reload = %d, want 1 (old plan invalidated)", got)
	}
	if got := m.Hits - base.Hits; got != 0 {
		t.Errorf("hits after stats reload = %d, want 0", got)
	}
	// The data itself is unchanged, so results must match.
	eqStrings(t, renderRows(res), want, "post-reload result")
}

func TestPlanCacheNoCrossTalkBetweenOptions(t *testing.T) {
	s := testStore(t, true)
	q := sparql.MustParse(cacheTestQuery)
	variants := []QueryOptions{
		{},
		{Strategy: StrategyVPOnly},
		{Strategy: StrategyMixedIPT},
		{Planner: PlannerHeuristic},
		{Planner: PlannerNaive},
		{Planner: PlannerCostLeftDeep},
		{BroadcastThreshold: -1},
		{BroadcastThreshold: 1},
		{ReplanThreshold: -1},
		{ReplanThreshold: 3},
	}
	base := s.PlanCacheMetrics()
	for i, opts := range variants {
		if _, err := s.Query(q, opts); err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
	}
	m := s.PlanCacheMetrics()
	if got := m.Misses - base.Misses; got != uint64(len(variants)) {
		t.Errorf("misses = %d, want %d (each option variant plans separately)", got, len(variants))
	}
	if got := m.Hits - base.Hits; got != 0 {
		t.Errorf("hits = %d, want 0 across distinct option variants", got)
	}
	// Re-running every variant hits its own entry.
	for i, opts := range variants {
		if _, err := s.Query(q, opts); err != nil {
			t.Fatalf("variant %d rerun: %v", i, err)
		}
	}
	m2 := s.PlanCacheMetrics()
	if got := m2.Hits - m.Hits; got != uint64(len(variants)) {
		t.Errorf("rerun hits = %d, want %d", got, len(variants))
	}
}

func TestPlanCacheBypassAndDisable(t *testing.T) {
	s := testStore(t, false)
	q := sparql.MustParse(cacheTestQuery)
	base := s.PlanCacheMetrics()
	for i := 0; i < 3; i++ {
		if _, err := s.Query(q, QueryOptions{NoPlanCache: true}); err != nil {
			t.Fatalf("Query: %v", err)
		}
	}
	m := s.PlanCacheMetrics()
	if m.Hits != base.Hits || m.Misses != base.Misses || m.Entries != base.Entries {
		t.Errorf("NoPlanCache queries touched the cache: %+v -> %+v", base, m)
	}

	c := cluster.MustNew(cluster.Config{Workers: 3, DefaultPartitions: 4})
	disabled, err := Load(testGraph(), Options{Cluster: c, PlanCacheSize: -1})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := disabled.Query(q, QueryOptions{}); err != nil {
			t.Fatalf("Query: %v", err)
		}
	}
	if m := disabled.PlanCacheMetrics(); m.Hits != 0 || m.Entries != 0 {
		t.Errorf("disabled cache recorded hits/entries: %+v", m)
	}
}

func TestPlanCacheHitRateOnRepeatedWorkload(t *testing.T) {
	// Acceptance check: >90% hit rate on a repeated-query workload with
	// byte-identical results to uncached planning.
	s := testStore(t, false)
	q := sparql.MustParse(cacheTestQuery)
	uncached, err := s.Query(q, QueryOptions{NoPlanCache: true})
	if err != nil {
		t.Fatalf("uncached: %v", err)
	}
	want := renderRows(uncached)
	base := s.PlanCacheMetrics()
	const runs = 50
	for i := 0; i < runs; i++ {
		res, err := s.Query(q, QueryOptions{})
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		eqStrings(t, renderRows(res), want, fmt.Sprintf("cached run %d", i))
	}
	m := s.PlanCacheMetrics()
	hits := m.Hits - base.Hits
	misses := m.Misses - base.Misses
	rate := float64(hits) / float64(hits+misses)
	if rate < 0.9 {
		t.Errorf("hit rate = %.2f (%d hits / %d misses), want > 0.9", rate, hits, misses)
	}
}

func TestPlanCacheEviction(t *testing.T) {
	c := cluster.MustNew(cluster.Config{Workers: 3, DefaultPartitions: 4})
	s, err := Load(testGraph(), Options{Cluster: c, PlanCacheSize: 2})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	preds := []string{"likes", "follows", "age", "hasGenre"}
	for _, p := range preds {
		src := fmt.Sprintf(`SELECT ?s WHERE { ?s <http://example.org/%s> ?o . }`, p)
		if _, err := s.Query(sparql.MustParse(src), QueryOptions{}); err != nil {
			t.Fatalf("%s: %v", p, err)
		}
	}
	m := s.PlanCacheMetrics()
	if m.Entries > 2 {
		t.Errorf("cache grew to %d entries, bound is 2", m.Entries)
	}
	if m.Evictions == 0 {
		t.Errorf("no evictions recorded after exceeding the bound")
	}
}

// TestConcurrentQueriesMatchSequential hammers Store.Query from 16
// goroutines (the -race gate) and checks every concurrent result is
// byte-identical to the sequential baseline, with deterministic
// simulated times.
func TestConcurrentQueriesMatchSequential(t *testing.T) {
	g := watdiv.MustGenerate(watdiv.Config{Scale: 100, Seed: 7})
	c := cluster.MustNew(cluster.Config{Workers: 4, DefaultPartitions: 8})
	s, err := Load(g, Options{Cluster: c})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	queries := watdiv.BasicQuerySet()[:8]

	render := func(res *Result) string {
		var sb strings.Builder
		for _, row := range res.SortedRows() {
			for i, term := range row {
				if i > 0 {
					sb.WriteByte('\t')
				}
				sb.WriteString(term.String())
			}
			sb.WriteByte('\n')
		}
		return sb.String()
	}

	want := make([]string, len(queries))
	wantSim := make([]int64, len(queries))
	for i, q := range queries {
		// Warm to the feedback-cache steady state: a first execution may
		// re-plan and write the corrected plan back, so the stable
		// SimTime is the cached one every later run reproduces.
		var prev int64 = -1
		for r := 0; r < 6; r++ {
			res, err := s.Query(q.Parsed, QueryOptions{})
			if err != nil {
				t.Fatalf("%s sequential: %v", q.Name, err)
			}
			want[i] = render(res)
			wantSim[i] = int64(res.SimTime)
			if wantSim[i] == prev {
				break
			}
			prev = wantSim[i]
		}
	}

	const goroutines = 16
	const rounds = 3
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*rounds)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				qi := (gi + r) % len(queries)
				res, err := s.Query(queries[qi].Parsed, QueryOptions{})
				if err != nil {
					errs <- fmt.Errorf("%s: %w", queries[qi].Name, err)
					return
				}
				if got := render(res); got != want[qi] {
					errs <- fmt.Errorf("%s: concurrent rows differ from sequential", queries[qi].Name)
					return
				}
				if int64(res.SimTime) != wantSim[qi] {
					errs <- fmt.Errorf("%s: concurrent SimTime %v != sequential %v (nondeterministic critical path)",
						queries[qi].Name, res.SimTime, wantSim[qi])
					return
				}
			}
		}(gi)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentPlannerModesShareCacheSafely mixes planner modes and
// strategies across goroutines so cached entries for different keys are
// created and hit while other executions are in flight.
func TestConcurrentPlannerModesShareCacheSafely(t *testing.T) {
	s := testStore(t, true)
	q := sparql.MustParse(cacheTestQuery)
	want := runQuery(t, s, cacheTestQuery, StrategyMixed)
	variants := []QueryOptions{
		{},
		{Strategy: StrategyVPOnly},
		{Strategy: StrategyMixedIPT},
		{Planner: PlannerHeuristic},
		{Planner: PlannerCostLeftDeep},
		{Planner: PlannerNaive},
		{Parallelism: 1},
		{NoPlanCache: true},
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for gi := 0; gi < 16; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for r := 0; r < 4; r++ {
				opts := variants[(gi+r)%len(variants)]
				res, err := s.Query(q, opts)
				if err != nil {
					errs <- err
					return
				}
				got := renderRows(res)
				if len(got) != len(want) {
					errs <- fmt.Errorf("variant %+v: %d rows, want %d", opts, len(got), len(want))
					return
				}
				for i := range got {
					if got[i] != want[i] {
						errs <- fmt.Errorf("variant %+v: row %d = %q, want %q", opts, i, got[i], want[i])
						return
					}
				}
			}
		}(gi)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
