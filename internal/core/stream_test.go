package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/watdiv"
)

// streamStoreOnce shares one WatDiv store across the streaming tests
// (loading dominates their runtime; queries are read-only).
var (
	streamStoreOnce sync.Once
	streamStore     *Store
	streamGraph     *rdf.Graph // the generated triples, for reference evaluation
)

func watdivStreamStore(t testing.TB) *Store {
	streamStoreOnce.Do(func() {
		g := watdiv.MustGenerate(watdiv.Config{Scale: 120, Seed: 11})
		c := cluster.MustNew(cluster.Config{Workers: 4, DefaultPartitions: 8})
		s, err := Load(g, Options{Cluster: c, BuildInversePT: true})
		if err != nil {
			panic(err)
		}
		streamStore = s
		streamGraph = g
	})
	if streamStore == nil {
		t.Fatal("WatDiv store failed to load")
	}
	return streamStore
}

func renderSorted(res *Result) string {
	var sb strings.Builder
	for _, row := range res.SortedRows() {
		for i, term := range row {
			if i > 0 {
				sb.WriteByte('\t')
			}
			sb.WriteString(term.String())
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

var streamStrategies = []Strategy{StrategyMixed, StrategyVPOnly, StrategyMixedIPT}
var streamPlanners = []PlannerMode{PlannerNaive, PlannerCost, PlannerCostLeftDeep, PlannerHeuristic}

// TestStreamingByteIdenticalOnWatDiv is the streaming-correctness
// property test: for every WatDiv query, across all four planner modes
// and all three storage strategies, the morsel-driven streaming
// executor must return byte-identical sorted rows to the materialized
// scheduler.
func TestStreamingByteIdenticalOnWatDiv(t *testing.T) {
	s := watdivStreamStore(t)
	for _, q := range watdiv.BasicQuerySet() {
		for _, strat := range streamStrategies {
			for _, mode := range streamPlanners {
				base := QueryOptions{Strategy: strat, Planner: mode, ReplanThreshold: -1}
				mat, err := s.Query(q.Parsed, base)
				if err != nil {
					t.Fatalf("%s/%s/%v materialized: %v", q.Name, strat, mode, err)
				}
				opts := base
				opts.Streaming = true
				str, err := s.Query(q.Parsed, opts)
				if err != nil {
					t.Fatalf("%s/%s/%v streaming: %v", q.Name, strat, mode, err)
				}
				if !str.Streamed {
					t.Fatalf("%s/%s/%v: streaming query fell back to the materialized path", q.Name, strat, mode)
				}
				if got, want := renderSorted(str), renderSorted(mat); got != want {
					t.Errorf("%s/%s/%v: streaming rows differ from materialized\nplan:\n%s", q.Name, strat, mode, str.Plan)
				}
			}
		}
	}
}

// TestStreamingByteIdenticalUnderFaults re-runs the identity property
// under a seeded rates-only fault plan: injected morsel retries,
// stragglers, speculation and corrupted deliveries may reshape the
// virtual timeline, but never the rows.
func TestStreamingByteIdenticalUnderFaults(t *testing.T) {
	s := watdivStreamStore(t)
	fp := &cluster.FaultPlan{
		Seed:          42,
		FailRate:      0.15,
		StragglerRate: 0.1,
		CorruptRate:   0.1,
	}
	for _, q := range watdiv.BasicQuerySet() {
		base := QueryOptions{Strategy: StrategyMixed, ReplanThreshold: -1}
		mat, err := s.Query(q.Parsed, base)
		if err != nil {
			t.Fatalf("%s materialized: %v", q.Name, err)
		}
		opts := base
		opts.Streaming = true
		opts.Faults = fp
		str, err := s.Query(q.Parsed, opts)
		if err != nil {
			t.Fatalf("%s streaming+faults: %v", q.Name, err)
		}
		if !str.Streamed {
			t.Fatalf("%s: fell back to materialized", q.Name)
		}
		if str.Resilience.Attempts == 0 {
			t.Errorf("%s: active fault plan recorded no morsel attempts", q.Name)
		}
		if got, want := renderSorted(str), renderSorted(mat); got != want {
			t.Errorf("%s: rows differ under fault injection", q.Name)
		}
		clean := base
		clean.Streaming = true
		cleanRes, err := s.Query(q.Parsed, clean)
		if err != nil {
			t.Fatalf("%s streaming clean: %v", q.Name, err)
		}
		if str.SimTime < cleanRes.SimTime {
			t.Errorf("%s: faulted SimTime %v below clean %v", q.Name, str.SimTime, cleanRes.SimTime)
		}
		if overhead := str.SimTime - cleanRes.SimTime; overhead > str.Resilience.RecoveryTime {
			t.Errorf("%s: SimTime overhead %v exceeds priced recovery %v", q.Name, overhead, str.Resilience.RecoveryTime)
		}
	}
}

// TestStreamingSimTimeWithinBudget is the perf acceptance gate: on
// every WatDiv query (Mixed strategy, cost planner), streaming SimTime
// must not regress more than 5% over the materialized executor.
func TestStreamingSimTimeWithinBudget(t *testing.T) {
	s := watdivStreamStore(t)
	for _, q := range watdiv.BasicQuerySet() {
		base := QueryOptions{Strategy: StrategyMixed, ReplanThreshold: -1}
		mat, err := s.Query(q.Parsed, base)
		if err != nil {
			t.Fatalf("%s materialized: %v", q.Name, err)
		}
		opts := base
		opts.Streaming = true
		str, err := s.Query(q.Parsed, opts)
		if err != nil {
			t.Fatalf("%s streaming: %v", q.Name, err)
		}
		if limit := mat.SimTime + mat.SimTime/20; str.SimTime > limit {
			t.Errorf("%s: streaming SimTime %v exceeds 105%% of materialized %v",
				q.Name, str.SimTime, mat.SimTime)
		}
	}
}

// TestStreamingFirstRowBeatsSimTime checks the latency half of the
// tentpole: on every multi-join query that returns rows, the first
// result morsel lands at the driver strictly before the query
// completes.
func TestStreamingFirstRowBeatsSimTime(t *testing.T) {
	s := watdivStreamStore(t)
	checked := 0
	for _, q := range watdiv.BasicQuerySet() {
		res, err := s.Query(q.Parsed, QueryOptions{Strategy: StrategyMixed, Streaming: true, ReplanThreshold: -1})
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		if !res.Streamed || len(res.Rows) == 0 {
			continue
		}
		if res.FirstRow <= 0 {
			t.Errorf("%s: streamed query with %d rows has no FirstRow", q.Name, len(res.Rows))
			continue
		}
		if res.FirstRow >= res.SimTime {
			t.Errorf("%s: FirstRow %v not earlier than SimTime %v", q.Name, res.FirstRow, res.SimTime)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no streamed query with rows was checked")
	}
}

// TestStreamingPeakMemoryDrop checks the memory half of the tentpole:
// on the C-family queries (Mixed strategy) the streaming executor's
// peak intermediate footprint is at least 4x below the materialized
// scheduler's. The comparison runs at the default cluster shape
// (9 workers) — the broadcast-replica share of the materialized peak
// scales with min(workers, partitions), so the narrow 4-worker store
// the other tests share would understate the production gap.
func TestStreamingPeakMemoryDrop(t *testing.T) {
	g := watdiv.MustGenerate(watdiv.Config{Scale: 120, Seed: 11})
	c := cluster.MustNew(cluster.Config{Workers: 9})
	s, err := Load(g, Options{Cluster: c})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for _, q := range watdiv.BasicQuerySet() {
		if q.Group != "C" {
			continue
		}
		base := QueryOptions{Strategy: StrategyMixed, ReplanThreshold: -1}
		mat, err := s.Query(q.Parsed, base)
		if err != nil {
			t.Fatalf("%s materialized: %v", q.Name, err)
		}
		opts := base
		opts.Streaming = true
		str, err := s.Query(q.Parsed, opts)
		if err != nil {
			t.Fatalf("%s streaming: %v", q.Name, err)
		}
		if !str.Streamed {
			t.Fatalf("%s: fell back to materialized", q.Name)
		}
		if mat.PeakMemBytes <= 0 || str.PeakMemBytes <= 0 {
			t.Fatalf("%s: peak bytes not tracked (mat=%d stream=%d)", q.Name, mat.PeakMemBytes, str.PeakMemBytes)
		}
		if ratio := float64(mat.PeakMemBytes) / float64(str.PeakMemBytes); ratio < 4 {
			t.Errorf("%s: peak memory ratio %.2fx (mat %d B / stream %d B), want >= 4x",
				q.Name, ratio, mat.PeakMemBytes, str.PeakMemBytes)
		}
	}
}

// TestStreamingTakesLimit locks in the removal of the old silent
// LIMIT/OFFSET fallback: a LIMIT query now runs on the streaming
// executor (as a bounded top-K sink), returns exactly the limited row
// count, and matches the materialized path byte for byte.
func TestStreamingTakesLimit(t *testing.T) {
	s := testStore(t, false)
	src := `SELECT ?u ?v WHERE {
		?u <http://example.org/follows> ?v .
		?v <http://example.org/likes> ?p .
	} LIMIT 2`
	res, err := s.Query(sparql.MustParse(src), QueryOptions{Streaming: true})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if !res.Streamed {
		t.Error("LIMIT query fell back to the materialized path")
	}
	if len(res.Rows) != 2 {
		t.Errorf("LIMIT 2 returned %d rows", len(res.Rows))
	}
	mat, err := s.Query(sparql.MustParse(src), QueryOptions{})
	if err != nil {
		t.Fatalf("materialized Query: %v", err)
	}
	if got, want := renderSorted(res), renderSorted(mat); got != want {
		t.Errorf("streamed LIMIT rows differ from materialized:\ngot:\n%swant:\n%s", got, want)
	}
}

// TestStreamingChunkSizeInvariance: the chunk-size knob changes morsel
// granularity, never results.
func TestStreamingChunkSizeInvariance(t *testing.T) {
	s := watdivStreamStore(t)
	q := mustQueryByName(t, "C2")
	var want string
	for i, chunk := range []int{64, 1024, 1 << 16} {
		res, err := s.Query(q.Parsed, QueryOptions{Strategy: StrategyMixed, Streaming: true, ChunkSize: chunk, ReplanThreshold: -1})
		if err != nil {
			t.Fatalf("chunk %d: %v", chunk, err)
		}
		if !res.Streamed {
			t.Fatalf("chunk %d: fell back", chunk)
		}
		got := renderSorted(res)
		if i == 0 {
			want = got
		} else if got != want {
			t.Errorf("chunk %d: rows differ from chunk 64", chunk)
		}
	}
}

// TestStreamingConcurrentQueries hammers the streaming executor from
// many goroutines (race-detector coverage for the shared pipeline
// state: step counters, distinct sets, partition slots).
func TestStreamingConcurrentQueries(t *testing.T) {
	s := watdivStreamStore(t)
	queries := watdiv.BasicQuerySet()
	want := make([]string, len(queries))
	for i, q := range queries {
		res, err := s.Query(q.Parsed, QueryOptions{Strategy: StrategyMixed, ReplanThreshold: -1})
		if err != nil {
			t.Fatalf("%s baseline: %v", q.Name, err)
		}
		want[i] = renderSorted(res)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 4*len(queries))
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i, q := range queries {
				res, err := s.Query(q.Parsed, QueryOptions{Strategy: StrategyMixed, Streaming: true, ChunkSize: 512 << (w % 3), ReplanThreshold: -1})
				if err != nil {
					errs <- fmt.Errorf("%s worker %d: %v", q.Name, w, err)
					return
				}
				if got := renderSorted(res); got != want[i] {
					errs <- fmt.Errorf("%s worker %d: rows differ", q.Name, w)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func mustQueryByName(t testing.TB, name string) watdiv.Query {
	q, err := watdiv.QueryByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// BenchmarkStreamingFirstRow tracks simulated first-row latency and
// completion of the C1 streaming execution.
func BenchmarkStreamingFirstRow(b *testing.B) {
	s := watdivStreamStore(b)
	q := mustQueryByName(b, "C1")
	opts := QueryOptions{Strategy: StrategyMixed, Streaming: true, ReplanThreshold: -1}
	b.ResetTimer()
	var res *Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = s.Query(q.Parsed, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.FirstRow.Microseconds())/1e3, "firstrow-ms")
	b.ReportMetric(float64(res.SimTime.Microseconds())/1e3, "sim-ms")
}

// BenchmarkStreamingPeakMemory tracks the simulated peak intermediate
// footprint of C1 under both execution modes.
func BenchmarkStreamingPeakMemory(b *testing.B) {
	s := watdivStreamStore(b)
	q := mustQueryByName(b, "C1")
	b.ResetTimer()
	var mat, str *Result
	for i := 0; i < b.N; i++ {
		var err error
		mat, err = s.Query(q.Parsed, QueryOptions{Strategy: StrategyMixed, ReplanThreshold: -1})
		if err != nil {
			b.Fatal(err)
		}
		str, err = s.Query(q.Parsed, QueryOptions{Strategy: StrategyMixed, Streaming: true, ReplanThreshold: -1})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(mat.PeakMemBytes)/1024, "mat-peak-KiB")
	b.ReportMetric(float64(str.PeakMemBytes)/1024, "stream-peak-KiB")
}
