package core

// Tests for the workload-driven ExtVP subsystem: byte-identity of
// rewritten executions across every planner/strategy/executor
// combination, budget enforcement end to end, invalidation on
// statistics reload, cross-query estimate seeding, and race-detector
// coverage of queries running concurrently with background builds
// (the TestConcurrent* name is load-bearing: CI's race gate runs
// -run Concurrent).

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/plan"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/stats"
)

// extvpGraph builds a graph where semi-join reductions actually shrink
// tables: likes edges point at products without genres (pC, pD),
// hasGenre covers products nobody likes (pE, pF), and the follows
// graph has sources and sinks outside its own subject/object overlap —
// so every hot pair's reduction drops rows and gets materialized.
func extvpGraph() *rdf.Graph {
	iri := func(s string) rdf.Term { return rdf.NewIRI(testNS + s) }
	g := rdf.NewGraph(0)
	add := func(s, p string, o string) { g.AddSPO(iri(s), iri(p), iri(o)) }

	add("u0", "likes", "pA")
	add("u1", "likes", "pA")
	add("u1", "likes", "pB")
	add("u2", "likes", "pB")
	add("u3", "likes", "pC")
	add("u4", "likes", "pD")

	add("pA", "hasGenre", "g1")
	add("pB", "hasGenre", "g1")
	add("pB", "hasGenre", "g2")
	add("pE", "hasGenre", "g2")
	add("pF", "hasGenre", "g3")

	add("u0", "follows", "u1")
	add("u1", "follows", "u2")
	add("u3", "follows", "u0")
	add("u5", "follows", "u9")

	add("u0", "purchased", "pB")
	add("u5", "purchased", "pF")
	return g
}

// extvpQueries is the workload the tests repeat: chains, a star, a
// self-join and a constant-bound pattern over extvpGraph.
var extvpQueries = []string{
	`SELECT ?u ?g WHERE {
		?u <http://example.org/likes> ?p .
		?p <http://example.org/hasGenre> ?g .
	}`,
	`SELECT ?u WHERE {
		?u <http://example.org/likes> ?p .
		?p <http://example.org/hasGenre> <http://example.org/g1> .
	}`,
	`SELECT ?u ?v ?g WHERE {
		?u <http://example.org/likes> ?p .
		?u <http://example.org/follows> ?v .
		?p <http://example.org/hasGenre> ?g .
	}`,
	`SELECT ?a ?c WHERE {
		?a <http://example.org/follows> ?b .
		?b <http://example.org/follows> ?c .
	}`,
	`SELECT ?u ?p WHERE {
		?u <http://example.org/purchased> ?p .
		?u <http://example.org/likes> ?q .
		?p <http://example.org/hasGenre> ?g .
	}`,
}

// extvpStore loads extvpGraph with the workload subsystem enabled.
func extvpStore(t testing.TB, budget int64) *Store {
	t.Helper()
	c := cluster.MustNew(cluster.Config{Workers: 3, DefaultPartitions: 4})
	s, err := Load(extvpGraph(), Options{Cluster: c, BuildInversePT: true, ExtVPBudget: budget, ExtVPBuildAfter: 1})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return s
}

// plainExtvpStore loads extvpGraph without the workload subsystem —
// the identity baseline.
func plainExtvpStore(t testing.TB) *Store {
	t.Helper()
	c := cluster.MustNew(cluster.Config{Workers: 3, DefaultPartitions: 4})
	s, err := Load(extvpGraph(), Options{Cluster: c, BuildInversePT: true})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return s
}

// planUsesExtVP reports whether any scan of an executed plan carries
// an ExtVP rewrite.
func planUsesExtVP(p *plan.Plan) bool {
	for _, n := range p.Scans() {
		if n.ExtVP != nil {
			return true
		}
	}
	return false
}

// TestExtVPByteIdenticalAcrossModes is the correctness property test:
// for every query, across all planners, strategies and both executors,
// rows must be byte-identical between the plain store and the
// ExtVP-enabled store — cold (tables building in the background) and
// warm (reductions installed and rewrites firing).
func TestExtVPByteIdenticalAcrossModes(t *testing.T) {
	plain := plainExtvpStore(t)
	s := extvpStore(t, 1<<20)

	strategies := []Strategy{StrategyMixed, StrategyVPOnly, StrategyMixedIPT}
	planners := []PlannerMode{PlannerNaive, PlannerCost, PlannerCostLeftDeep, PlannerHeuristic}

	check := func(phase string) {
		for qi, src := range extvpQueries {
			q := sparql.MustParse(src)
			for _, strat := range strategies {
				for _, mode := range planners {
					for _, streaming := range []bool{false, true} {
						opts := QueryOptions{Strategy: strat, Planner: mode, Streaming: streaming}
						want, err := plain.Query(q, opts)
						if err != nil {
							t.Fatalf("%s q%d/%s/%v plain: %v", phase, qi, strat, mode, err)
						}
						got, err := s.Query(q, opts)
						if err != nil {
							t.Fatalf("%s q%d/%s/%v extvp: %v", phase, qi, strat, mode, err)
						}
						eqStrings(t, renderRows(got), renderRows(want),
							fmt.Sprintf("%s q%d/%s/%v/streaming=%v", phase, qi, strat, mode, streaming))
					}
				}
			}
		}
	}

	check("cold") // mines pairs; builds run in the background
	s.Workload().Wait()
	met := s.WorkloadMetrics()
	if met.TablesBuilt == 0 {
		t.Fatalf("no reductions built after the cold pass (metrics %+v)", met)
	}
	check("warm") // rewrites fire against the materialized reductions

	if got := s.EstSourceMetrics().ExtVP; got == 0 {
		t.Errorf("no scan was ever priced from a reduction (est-source counters %+v)", s.EstSourceMetrics())
	}
	if got := s.WorkloadMetrics().HitCount; got == 0 {
		t.Errorf("no reduction was ever served to an execution")
	}
}

// TestExtVPRewriteRecorded checks the EXPLAIN surface: a warm plan
// shows the applied rewrite on its scan node and in RewriteSummary.
func TestExtVPRewriteRecorded(t *testing.T) {
	s := extvpStore(t, 1<<20)
	q := sparql.MustParse(extvpQueries[0])
	if _, err := s.Query(q, QueryOptions{Strategy: StrategyVPOnly}); err != nil {
		t.Fatalf("cold query: %v", err)
	}
	s.Workload().Wait()
	res, err := s.Query(q, QueryOptions{Strategy: StrategyVPOnly})
	if err != nil {
		t.Fatalf("warm query: %v", err)
	}
	if !planUsesExtVP(res.Plan) {
		t.Fatalf("warm plan carries no ExtVP rewrite:\n%s", res.Plan)
	}
	sum := res.Plan.RewriteSummary()
	if sum == "" {
		t.Fatalf("RewriteSummary empty on a rewritten plan")
	}
	applied := false
	for _, r := range res.Plan.Rewrites {
		if r.Applied {
			applied = true
			if r.TableRows >= r.SourceRows {
				t.Errorf("applied rewrite does not shrink: %d of %d rows", r.TableRows, r.SourceRows)
			}
			if r.NewTime >= r.OldTime {
				t.Errorf("applied rewrite not priced cheaper: %v -> %v", r.OldTime, r.NewTime)
			}
		}
	}
	if !applied {
		t.Fatalf("no applied rewrite recorded:\n%s", sum)
	}
}

// TestExtVPBudgetHonored loads a twin store whose budget is one byte
// short of the unconstrained footprint: eviction must fire, live bytes
// must respect the budget, and results must stay correct.
func TestExtVPBudgetHonored(t *testing.T) {
	// Measure the unconstrained footprint first.
	big := extvpStore(t, 1<<30)
	for _, src := range extvpQueries {
		if _, err := big.Query(sparql.MustParse(src), QueryOptions{Strategy: StrategyVPOnly}); err != nil {
			t.Fatalf("measure query: %v", err)
		}
	}
	big.Workload().Wait()
	full := big.WorkloadMetrics()
	if full.TablesBuilt < 2 {
		t.Fatalf("measurement store built %d tables, need >= 2 for an eviction test", full.TablesBuilt)
	}

	s := extvpStore(t, full.TableBytes-1)
	plain := plainExtvpStore(t)
	for _, src := range extvpQueries {
		q := sparql.MustParse(src)
		want, err := plain.Query(q, QueryOptions{Strategy: StrategyVPOnly})
		if err != nil {
			t.Fatalf("plain: %v", err)
		}
		got, err := s.Query(q, QueryOptions{Strategy: StrategyVPOnly})
		if err != nil {
			t.Fatalf("budgeted: %v", err)
		}
		eqStrings(t, renderRows(got), renderRows(want), "budgeted cold "+src[:30])
	}
	s.Workload().Wait()
	met := s.WorkloadMetrics()
	if met.TableBytes > met.BudgetBytes {
		t.Errorf("live table bytes %d exceed budget %d", met.TableBytes, met.BudgetBytes)
	}
	if met.TablesEvicted == 0 {
		t.Errorf("budget one byte under the full footprint evicted nothing (metrics %+v)", met)
	}
	// Warm pass stays correct with a partial table set.
	for _, src := range extvpQueries {
		q := sparql.MustParse(src)
		want, _ := plain.Query(q, QueryOptions{Strategy: StrategyVPOnly})
		got, err := s.Query(q, QueryOptions{Strategy: StrategyVPOnly})
		if err != nil {
			t.Fatalf("budgeted warm: %v", err)
		}
		eqStrings(t, renderRows(got), renderRows(want), "budgeted warm "+src[:30])
	}
}

// TestExtVPInvalidatedOnStatsReload pins the generation contract: a
// statistics reload drops every reduction and observation, stale plan
// entries become unreachable (workload epoch moved), and no execution
// scans a stale table — plans built after the reload carry no rewrite
// until new builds complete against the new generation.
func TestExtVPInvalidatedOnStatsReload(t *testing.T) {
	s := extvpStore(t, 1<<20)
	plain := plainExtvpStore(t)
	q := sparql.MustParse(extvpQueries[0])
	opts := QueryOptions{Strategy: StrategyVPOnly}

	if _, err := s.Query(q, opts); err != nil {
		t.Fatalf("cold: %v", err)
	}
	s.Workload().Wait()
	warm, err := s.Query(q, opts)
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	if !planUsesExtVP(warm.Plan) {
		t.Fatalf("warm plan carries no rewrite — test cannot exercise invalidation")
	}
	// Grab the warm plan's reduction ref; after the reload it must no
	// longer resolve (the executor falls back to the full table).
	var ref *plan.ExtVPRef
	for _, n := range warm.Plan.Scans() {
		if n.ExtVP != nil {
			ref = n.ExtVP
		}
	}
	gen := s.Workload().Generation()

	s.swapStats(stats.CollectJoinStats(s.triples, stats.Config{CSets: true}))

	if got := s.Workload().Generation(); got != gen+1 {
		t.Fatalf("generation = %d after reload, want %d", got, gen+1)
	}
	if met := s.WorkloadMetrics(); met.TablesLive != 0 {
		t.Fatalf("%d tables survived the reload", met.TablesLive)
	}
	if _, _, ok := s.extvpTable(ref); ok {
		t.Fatalf("stale reduction ref still resolves after reload")
	}
	post, err := s.Query(q, opts)
	if err != nil {
		t.Fatalf("post-reload: %v", err)
	}
	if planUsesExtVP(post.Plan) {
		t.Fatalf("post-reload plan still scans a reduction:\n%s", post.Plan)
	}
	want, _ := plain.Query(q, opts)
	eqStrings(t, renderRows(post), renderRows(want), "post-reload rows")

	// The model rebuilds against the new generation from fresh mining.
	if _, err := s.Query(q, opts); err != nil {
		t.Fatalf("re-mine: %v", err)
	}
	s.Workload().Wait()
	if met := s.WorkloadMetrics(); met.TablesLive == 0 {
		t.Errorf("no reductions rebuilt after the reload (metrics %+v)", met)
	}
}

// TestExtVPObservedSeeding pins the cross-query feedback path: after
// one query executes a (predicate, constant) scan, a different query
// sharing the subpattern prices that leaf exactly, tagged est-source
// obs.
func TestExtVPObservedSeeding(t *testing.T) {
	s := extvpStore(t, 1<<20)
	first := sparql.MustParse(`SELECT ?u WHERE {
		?u <http://example.org/likes> <http://example.org/pB> .
	}`)
	res, err := s.Query(first, QueryOptions{Strategy: StrategyVPOnly})
	if err != nil {
		t.Fatalf("first: %v", err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("likes-pB returned %d rows, want 2 (u1, u2)", len(res.Rows))
	}
	// A different query sharing the (likes, pB) subpattern.
	second := sparql.MustParse(`SELECT ?u ?v WHERE {
		?u <http://example.org/likes> <http://example.org/pB> .
		?u <http://example.org/follows> ?v .
	}`)
	pl, err := s.Plan(second, QueryOptions{Strategy: StrategyVPOnly})
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	seeded := false
	for _, l := range pl.Leaves {
		if l.EstSource == plan.EstObserved {
			seeded = true
			if l.Est != 2 {
				t.Errorf("seeded estimate = %g, want the observed 2", l.Est)
			}
		}
	}
	if !seeded {
		t.Fatalf("no leaf seeded from the observed cardinality; leaves: %+v", pl.Leaves)
	}
	if got := s.EstSourceMetrics().Observed; got == 0 {
		t.Errorf("est-source counters recorded no observed-seeded node")
	}
}

// TestConcurrentExtVPQueriesDuringBuilds races 16 query goroutines
// (both executors, all strategies) against background reduction builds
// and two mid-flight statistics reloads; every result must match the
// plain store and the store must quiesce cleanly. Run under -race in
// CI's concurrent gate.
func TestConcurrentExtVPQueriesDuringBuilds(t *testing.T) {
	s := extvpStore(t, 1<<20)
	plain := plainExtvpStore(t)

	want := make(map[string][]string, len(extvpQueries))
	for _, src := range extvpQueries {
		res, err := plain.Query(sparql.MustParse(src), QueryOptions{})
		if err != nil {
			t.Fatalf("baseline: %v", err)
		}
		want[src] = renderRows(res)
	}

	const workers = 16
	const rounds = 8
	strategies := []Strategy{StrategyMixed, StrategyVPOnly, StrategyMixedIPT}
	var wg sync.WaitGroup
	errs := make(chan error, workers*rounds)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				src := extvpQueries[(w+r)%len(extvpQueries)]
				opts := QueryOptions{
					Strategy:  strategies[(w+r)%len(strategies)],
					Streaming: (w+r)%2 == 0,
				}
				res, err := s.Query(sparql.MustParse(src), opts)
				if err != nil {
					errs <- fmt.Errorf("worker %d round %d: %w", w, r, err)
					return
				}
				got := renderRows(res)
				exp := want[src]
				if len(got) != len(exp) {
					errs <- fmt.Errorf("worker %d round %d: %d rows, want %d", w, r, len(got), len(exp))
					return
				}
				for i := range got {
					if got[i] != exp[i] {
						errs <- fmt.Errorf("worker %d round %d row %d: %q != %q", w, r, i, got[i], exp[i])
						return
					}
				}
			}
		}(w)
	}
	// Two reloads land while queries and builds are in flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2; i++ {
			s.swapStats(stats.CollectJoinStats(s.triples, stats.Config{CSets: true}))
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	s.Workload().Wait()
}

// TestPlanCacheFeedbackWriteBackNoEvictionLoop is the FIFO regression
// test: with the cache at capacity and the working set exactly filling
// it, the corrected-plan write-back (same key, replaced in place) must
// not consume a new FIFO slot — an append there makes the stale slot
// pop a live entry and every subsequent run misses, re-plans and
// rewrites forever.
func TestPlanCacheFeedbackWriteBackNoEvictionLoop(t *testing.T) {
	c := cluster.MustNew(cluster.Config{Workers: 4, DefaultPartitions: 8})
	s, err := Load(correlatedGraph(), Options{Cluster: c, DisableJoinStats: true, PlanCacheSize: 1})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	q := sparql.MustParse(adaptiveQuery)

	const runs = 5
	for i := 0; i < runs; i++ {
		res, err := s.Query(q, QueryOptions{})
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if i == 0 && len(res.Replans) == 0 {
			t.Fatalf("first run did not trigger the corrective re-plan")
		}
		if i > 0 {
			if !res.CacheFeedback {
				t.Errorf("run %d missed the corrected entry (eviction loop)", i)
			}
			if len(res.Replans) != 0 {
				t.Errorf("run %d re-evaluated the re-plan despite the corrected entry", i)
			}
		}
	}
	m := s.PlanCacheMetrics()
	if m.Evictions != 0 {
		t.Errorf("evictions = %d, want 0 (write-back must replace in place)", m.Evictions)
	}
	if m.Misses != 1 {
		t.Errorf("misses = %d, want 1 (only the first run plans)", m.Misses)
	}
	if m.FeedbackHits != runs-1 {
		t.Errorf("feedback hits = %d, want %d", m.FeedbackHits, runs-1)
	}
}

// TestPlanCacheReplaceInPlaceAtCapacity pins the put() contract
// directly: re-inserting an existing key at capacity neither evicts
// nor grows the FIFO order.
func TestPlanCacheReplaceInPlaceAtCapacity(t *testing.T) {
	c := newPlanCache(2)
	c.put("k1", &cachedPlan{})
	c.put("k2", &cachedPlan{})
	for i := 0; i < 10; i++ {
		c.put("k1", &cachedPlan{corrected: true})
	}
	m := c.metrics()
	if m.Evictions != 0 {
		t.Errorf("evictions = %d, want 0", m.Evictions)
	}
	if m.Entries != 2 {
		t.Errorf("entries = %d, want 2", m.Entries)
	}
	if _, ok := c.get("k2"); !ok {
		t.Errorf("k2 evicted by an in-place replacement of k1")
	}
	if len(c.order) != 2 {
		t.Errorf("FIFO order grew to %d slots for 2 keys", len(c.order))
	}
}
