package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/plan"
	"repro/internal/sparql"
	"repro/internal/watdiv"
)

// planFor translates and plans src without executing it.
func planFor(t *testing.T, s *Store, src string, opts QueryOptions) *plan.Plan {
	t.Helper()
	q, err := sparql.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	pl, err := s.Plan(q, opts)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	return pl
}

// TestEstimatorExactOnSinglePatterns checks the cardinality estimator
// against exact counts on the small test graph: unconstrained VP scans
// are estimated from per-predicate triple counts and must match the
// actual scan output exactly.
func TestEstimatorExactOnSinglePatterns(t *testing.T) {
	s := testStore(t, false)
	cases := []struct {
		src  string
		want float64
	}{
		// follows has 3 triples.
		{`SELECT * WHERE { ?a <http://example.org/follows> ?b . }`, 3},
		// likes has 4 triples.
		{`SELECT * WHERE { ?a <http://example.org/likes> ?b . }`, 4},
		// hasGenre has 3 triples.
		{`SELECT * WHERE { ?a <http://example.org/hasGenre> ?b . }`, 3},
		// likes with bound object prodB: 4 triples / 2 distinct objects.
		{`SELECT ?u WHERE { ?u <http://example.org/likes> <http://example.org/prodB> . }`, 2},
		// unseen predicate: empty.
		{`SELECT ?a WHERE { ?a <http://example.org/nonexistent> ?b . }`, 0},
	}
	for _, tt := range cases {
		pl := planFor(t, s, tt.src, QueryOptions{Strategy: StrategyVPOnly})
		scans := pl.Scans()
		if len(scans) != 1 {
			t.Fatalf("%s: %d scans, want 1", tt.src, len(scans))
		}
		if scans[0].Est != tt.want {
			t.Errorf("%s: scan est = %g, want %g", tt.src, scans[0].Est, tt.want)
		}
	}
}

// TestEstimatorActualsRecordedAndExactForScans executes a query and
// checks the plan carries actual cardinalities, with scans of single
// unfiltered patterns estimated exactly.
func TestEstimatorActualsRecordedAndExactForScans(t *testing.T) {
	s := testStore(t, false)
	q := sparql.MustParse(`SELECT ?a ?g WHERE {
		?a <http://example.org/likes> ?p .
		?p <http://example.org/hasGenre> ?g .
	}`)
	res, err := s.Query(q, QueryOptions{Strategy: StrategyVPOnly})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if res.Plan == nil {
		t.Fatalf("Result.Plan is nil")
	}
	for _, sc := range res.Plan.Scans() {
		if sc.Actual < 0 {
			t.Errorf("scan %s has no actual cardinality", sc.Label)
		}
		if sc.Est != float64(sc.Actual) {
			t.Errorf("scan %s: est %g != actual %d (single unfiltered patterns are exact)", sc.Label, sc.Est, sc.Actual)
		}
	}
	if res.Plan.Root.Actual != 6 {
		t.Errorf("root actual = %d, want 6 result rows", res.Plan.Root.Actual)
	}
	ratio, at := res.Plan.MaxErrorRatio()
	if at == nil || ratio < 1 {
		t.Errorf("MaxErrorRatio = %g at %v", ratio, at)
	}
	if !strings.Contains(res.Plan.ErrorSummary(), "max ratio") {
		t.Errorf("ErrorSummary = %q", res.Plan.ErrorSummary())
	}
}

// TestLeafEstimateJoinStats pins the estimator precedence on the small
// test graph with hand-computed exact values: a Property Table star is
// priced from the characteristic sets (user0: 1 like, user1: 2 likes,
// user2: 1 like, all with age → 4 rows exactly), an inverse-PT object
// pair from the o-o self-sketch of likes (prodA and prodB each liked
// twice → Σ deg² = 8), and the tags propagate into the plan.
func TestLeafEstimateJoinStats(t *testing.T) {
	s := testStore(t, true)

	star := planFor(t, s, `SELECT * WHERE {
		?u <http://example.org/likes> ?p .
		?u <http://example.org/age> ?a .
	}`, QueryOptions{Strategy: StrategyMixed})
	scans := star.Scans()
	if len(scans) != 1 {
		t.Fatalf("star: %d scans, want 1 PT scan:\n%s", len(scans), star)
	}
	if scans[0].Est != 4 || scans[0].EstSource != plan.EstCSet {
		t.Errorf("PT star est = %g (%s), want exactly 4 from csets:\n%s", scans[0].Est, scans[0].EstSource, star)
	}

	ipt := planFor(t, s, `SELECT ?a ?b WHERE {
		?a <http://example.org/likes> ?p .
		?b <http://example.org/likes> ?p .
	}`, QueryOptions{Strategy: StrategyMixedIPT})
	scans = ipt.Scans()
	if len(scans) != 1 {
		t.Fatalf("ipt: %d scans, want 1 IPT scan:\n%s", len(scans), ipt)
	}
	if scans[0].Est != 8 || scans[0].EstSource != plan.EstSketch {
		t.Errorf("IPT pair est = %g (%s), want exactly 8 from the o-o sketch:\n%s", scans[0].Est, scans[0].EstSource, ipt)
	}

	// Both estimates are exact: execution must observe the same counts.
	for _, tt := range []struct {
		src   string
		strat Strategy
		want  int64
	}{
		{`SELECT * WHERE { ?u <http://example.org/likes> ?p . ?u <http://example.org/age> ?a . }`, StrategyMixed, 4},
		{`SELECT ?a ?b WHERE { ?a <http://example.org/likes> ?p . ?b <http://example.org/likes> ?p . }`, StrategyMixedIPT, 8},
	} {
		q := sparql.MustParse(tt.src)
		res, err := s.Query(q, QueryOptions{Strategy: tt.strat})
		if err != nil {
			t.Fatalf("Query: %v", err)
		}
		for _, sc := range res.Plan.Scans() {
			if sc.Actual != tt.want {
				t.Errorf("scan %s actual = %d, want %d", sc.Label, sc.Actual, tt.want)
			}
		}
	}

	// A sketch-less store reports indep on the same leaves.
	c := cluster.MustNew(cluster.Config{Workers: 3, DefaultPartitions: 4})
	indep, err := Load(testGraph(), Options{Cluster: c, BuildInversePT: true, DisableJoinStats: true})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	star = planFor(t, indep, `SELECT * WHERE {
		?u <http://example.org/likes> ?p .
		?u <http://example.org/age> ?a .
	}`, QueryOptions{Strategy: StrategyMixed})
	if src := star.Scans()[0].EstSource; src != plan.EstIndep {
		t.Errorf("sketch-less PT star est-source = %q, want indep", src)
	}
}

// TestFilterOnSharedVariableAppliedOnce is the duplicate-filter
// regression test: a filter whose variable several nodes expose must be
// pushed to exactly one scan and still produce correct rows.
func TestFilterOnSharedVariableAppliedOnce(t *testing.T) {
	s := testStore(t, false)
	src := `SELECT * WHERE {
		?u <http://example.org/age> ?a .
		?v <http://example.org/age> ?a .
		FILTER(?a > 26)
	}`
	for _, mode := range []PlannerMode{PlannerCost, PlannerHeuristic, PlannerNaive} {
		pl := planFor(t, s, src, QueryOptions{Strategy: StrategyVPOnly, Planner: mode})
		applied := 0
		for _, sc := range pl.Scans() {
			applied += len(sc.Filters)
		}
		if applied != 1 {
			t.Errorf("planner %v: filter applied at %d scans, want exactly 1:\n%s", mode, applied, pl)
		}
		got := runQuery(t, s, src, StrategyVPOnly)
		// Only user1 has age 30 > 26; SELECT * projects a,u,v sorted.
		eqStrings(t, got, []string{"30|user1|user1"}, fmt.Sprintf("planner %v", mode))
	}
}

// TestPlannerModesByteIdenticalOnWatDiv is the plan-correctness
// property test: for every WatDiv query, under all three strategies,
// the cost-based and heuristic planners must return byte-identical
// sorted rows to the naive written-order execution.
func TestPlannerModesByteIdenticalOnWatDiv(t *testing.T) {
	g := watdiv.MustGenerate(watdiv.Config{Scale: 120, Seed: 11})
	c := cluster.MustNew(cluster.Config{Workers: 4, DefaultPartitions: 8})
	s, err := Load(g, Options{Cluster: c, BuildInversePT: true})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	render := func(res *Result) string {
		var sb strings.Builder
		for _, row := range res.SortedRows() {
			for i, term := range row {
				if i > 0 {
					sb.WriteByte('\t')
				}
				sb.WriteString(term.String())
			}
			sb.WriteByte('\n')
		}
		return sb.String()
	}
	strategies := []Strategy{StrategyMixed, StrategyVPOnly, StrategyMixedIPT}
	for _, q := range watdiv.BasicQuerySet() {
		for _, strat := range strategies {
			baseline, err := s.Query(q.Parsed, QueryOptions{Strategy: strat, Planner: PlannerNaive})
			if err != nil {
				t.Fatalf("%s/%s naive: %v", q.Name, strat, err)
			}
			want := render(baseline)
			for _, mode := range []PlannerMode{PlannerCost, PlannerCostLeftDeep, PlannerHeuristic} {
				res, err := s.Query(q.Parsed, QueryOptions{Strategy: strat, Planner: mode})
				if err != nil {
					t.Fatalf("%s/%s %v: %v", q.Name, strat, mode, err)
				}
				if got := render(res); got != want {
					t.Errorf("%s/%s: %v planner rows differ from naive order\nplan:\n%s", q.Name, strat, mode, res.Plan)
				}
			}
		}
	}
}

// TestIPTLeafVarsMatchScanSchema guards the planner's schema-order
// contract: an inverse-PT leaf emits its key (the object variable)
// first, even though pattern order lists the subject first.
func TestIPTLeafVarsMatchScanSchema(t *testing.T) {
	s := testStore(t, true)
	pl := planFor(t, s, `SELECT ?a ?b WHERE {
		?a <http://example.org/likes> ?p .
		?b <http://example.org/likes> ?p .
	}`, QueryOptions{Strategy: StrategyMixedIPT})
	scans := pl.Scans()
	if len(scans) != 1 {
		t.Fatalf("%d scans, want 1 IPT scan:\n%s", len(scans), pl)
	}
	got := pl.Leaves[scans[0].Leaf].Vars
	want := []string{"p", "a", "b"}
	if len(got) != len(want) {
		t.Fatalf("IPT leaf vars = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IPT leaf vars = %v, want %v (key first)", got, want)
		}
	}
}

// TestPlannerModeParsing covers the CLI flag mapping.
func TestPlannerModeParsing(t *testing.T) {
	for _, tt := range []struct {
		in   string
		want PlannerMode
	}{{"cost", PlannerCost}, {"", PlannerCost}, {"heuristic", PlannerHeuristic}, {"naive", PlannerNaive}, {"cost-leftdeep", PlannerCostLeftDeep}} {
		got, err := ParsePlannerMode(tt.in)
		if err != nil || got != tt.want {
			t.Errorf("ParsePlannerMode(%q) = %v, %v", tt.in, got, err)
		}
	}
	// An invalid mode must be rejected with an error naming every
	// valid value (the CLI relies on this instead of silently falling
	// back).
	_, err := ParsePlannerMode("bogus")
	if err == nil {
		t.Fatalf("ParsePlannerMode(bogus) succeeded")
	}
	for _, name := range PlannerModeNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list valid mode %q", err, name)
		}
	}
	if PlannerCost.String() != "cost" || PlannerHeuristic.String() != "heuristic" ||
		PlannerNaive.String() != "naive" || PlannerCostLeftDeep.String() != "cost-leftdeep" {
		t.Errorf("PlannerMode names wrong")
	}
}

// TestStrategyParsing covers the shared strategy flag mapping.
func TestStrategyParsing(t *testing.T) {
	for _, tt := range []struct {
		in   string
		want Strategy
	}{{"mixed", StrategyMixed}, {"", StrategyMixed}, {"vp-only", StrategyVPOnly}, {"mixed+ipt", StrategyMixedIPT}} {
		got, err := ParseStrategy(tt.in)
		if err != nil || got != tt.want {
			t.Errorf("ParseStrategy(%q) = %v, %v", tt.in, got, err)
		}
	}
	_, err := ParseStrategy("bogus")
	if err == nil {
		t.Fatalf("ParseStrategy(bogus) succeeded")
	}
	for _, name := range StrategyNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list valid strategy %q", err, name)
		}
	}
}

// TestCostPlannerNotSlowerThanNaive sanity-checks the optimizer's
// reason to exist on a real dataset.
func TestCostPlannerNotSlowerThanNaive(t *testing.T) {
	g := watdiv.MustGenerate(watdiv.Config{Scale: 120, Seed: 11})
	c := cluster.MustNew(cluster.Config{Workers: 4, DefaultPartitions: 8})
	s, err := Load(g, Options{Cluster: c, BuildInversePT: false})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	var cost, naive int64
	for _, q := range watdiv.BasicQuerySet() {
		rc, err := s.Query(q.Parsed, QueryOptions{})
		if err != nil {
			t.Fatalf("%s cost: %v", q.Name, err)
		}
		rn, err := s.Query(q.Parsed, QueryOptions{Planner: PlannerNaive})
		if err != nil {
			t.Fatalf("%s naive: %v", q.Name, err)
		}
		cost += int64(rc.SimTime)
		naive += int64(rn.SimTime)
	}
	// Individual queries may regress by estimation luck; the total must
	// stay within a whisker of naive and normally beats it well.
	if float64(cost) > float64(naive)*1.01 {
		t.Errorf("cost-based total %d > naive total %d (+1%% slack)", cost, naive)
	}
}
