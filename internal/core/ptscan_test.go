package core

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

// edgeGraph exercises the Property Table corner cases: multi-valued
// cells, self-referential triples, and repeated predicates per subject.
func edgeGraph() *rdf.Graph {
	iri := func(s string) rdf.Term { return rdf.NewIRI(testNS + s) }
	g := rdf.NewGraph(0)
	add := func(s, p string, o rdf.Term) { g.AddSPO(iri(s), iri(p), o) }

	// a knows b and c (multi-valued); a rates both 5 and 7.
	add("a", "knows", iri("b"))
	add("a", "knows", iri("c"))
	add("a", "rates", rdf.NewTypedLiteral("5", rdf.XSDInteger))
	add("a", "rates", rdf.NewTypedLiteral("7", rdf.XSDInteger))
	// b knows itself (key == value) and knows c.
	add("b", "knows", iri("b"))
	add("b", "knows", iri("c"))
	add("b", "rates", rdf.NewTypedLiteral("5", rdf.XSDInteger))
	// c has rates only.
	add("c", "rates", rdf.NewTypedLiteral("9", rdf.XSDInteger))
	return g
}

func edgeStore(t *testing.T) *Store {
	t.Helper()
	c := cluster.MustNew(cluster.Config{Workers: 2, DefaultPartitions: 3})
	s, err := Load(edgeGraph(), Options{Cluster: c, BuildInversePT: true})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return s
}

func TestPTScanMultiValuedFlatten(t *testing.T) {
	s := edgeStore(t)
	// Star over two multi-valued predicates: the PT node must emit the
	// cartesian combination per subject (the paper's flatten).
	got := runQuery(t, s, `SELECT ?s ?k ?r WHERE {
		?s <http://example.org/knows> ?k .
		?s <http://example.org/rates> ?r .
	}`, StrategyMixed)
	want := []string{
		"a|b|5", "a|b|7", "a|c|5", "a|c|7",
		"b|b|5", "b|c|5",
	}
	eqStrings(t, got, want, "flatten")
	// VP-only must agree.
	vp := runQuery(t, s, `SELECT ?s ?k ?r WHERE {
		?s <http://example.org/knows> ?k .
		?s <http://example.org/rates> ?r .
	}`, StrategyVPOnly)
	eqStrings(t, vp, want, "flatten vp-only")
}

func TestPTScanSameVariableTwice(t *testing.T) {
	s := edgeStore(t)
	// ?s knows ?s: the value must equal the row key (only b qualifies).
	got := runQuery(t, s, `SELECT ?s WHERE {
		?s <http://example.org/knows> ?s .
		?s <http://example.org/rates> ?r .
	}`, StrategyMixed)
	eqStrings(t, got, []string{"b"}, "self loop")
}

func TestPTScanRepeatedPredicateDistinctVars(t *testing.T) {
	s := edgeStore(t)
	// Same predicate twice with different object vars: pairs of knows
	// values per subject (including equal pairs).
	got := runQuery(t, s, `SELECT ?s ?x ?y WHERE {
		?s <http://example.org/knows> ?x .
		?s <http://example.org/knows> ?y .
	}`, StrategyMixed)
	want := []string{
		"a|b|b", "a|b|c", "a|c|b", "a|c|c",
		"b|b|b", "b|b|c", "b|c|b", "b|c|c",
	}
	eqStrings(t, got, want, "repeated predicate")
	vp := runQuery(t, s, `SELECT ?s ?x ?y WHERE {
		?s <http://example.org/knows> ?x .
		?s <http://example.org/knows> ?y .
	}`, StrategyVPOnly)
	eqStrings(t, vp, want, "repeated predicate vp-only")
}

func TestPTScanRepeatedPredicateSharedVar(t *testing.T) {
	s := edgeStore(t)
	// Same predicate twice binding the SAME var: plain membership.
	got := runQuery(t, s, `SELECT ?s ?x WHERE {
		?s <http://example.org/knows> ?x .
		?s <http://example.org/knows> ?x .
	}`, StrategyMixed)
	want := []string{"a|b", "a|c", "b|b", "b|c"}
	eqStrings(t, got, want, "shared var")
}

func TestPTScanBoundObjectConstraint(t *testing.T) {
	s := edgeStore(t)
	got := runQuery(t, s, `SELECT ?s ?r WHERE {
		?s <http://example.org/knows> <http://example.org/c> .
		?s <http://example.org/rates> ?r .
	}`, StrategyMixed)
	want := []string{"a|5", "a|7", "b|5"}
	eqStrings(t, got, want, "bound object")
}

func TestInversePTSelfLoopAndPairs(t *testing.T) {
	s := edgeStore(t)
	// Object star: pairs of subjects knowing the same entity.
	q := sparql.MustParse(`SELECT ?x ?y WHERE {
		?x <http://example.org/knows> ?k .
		?y <http://example.org/knows> ?k .
	}`)
	ipt, err := s.Query(q, QueryOptions{Strategy: StrategyMixedIPT})
	if err != nil {
		t.Fatalf("ipt: %v", err)
	}
	mixed, err := s.Query(q, QueryOptions{Strategy: StrategyMixed})
	if err != nil {
		t.Fatalf("mixed: %v", err)
	}
	eqStrings(t, renderRows(ipt), renderRows(mixed), "ipt vs mixed pairs")
	// Sanity: tree used an IPT node.
	usedIPT := false
	for _, n := range ipt.Tree.Nodes {
		if n.Kind == NodeIPT {
			usedIPT = true
		}
	}
	if !usedIPT {
		t.Errorf("object star did not use the inverse PT:\n%s", ipt.Tree)
	}
}

func TestPTMultiValuedColumnsOnHDFS(t *testing.T) {
	s := edgeStore(t)
	knows, ok := s.Dictionary().Lookup(rdf.NewIRI(testNS + "knows"))
	if !ok {
		t.Fatalf("knows not in dictionary")
	}
	if !s.PropertyTable().MultiValued(knows) {
		t.Errorf("knows not multi-valued in PT")
	}
	if s.PropertyTable().FileBytes() <= 0 {
		t.Errorf("PT FileBytes = %d", s.PropertyTable().FileBytes())
	}
	files := s.FS().ListPrefix("/prost/pt/")
	if len(files) != s.Partitions() {
		t.Errorf("PT files on HDFS = %d, want %d", len(files), s.Partitions())
	}
	for _, f := range files {
		if !strings.HasSuffix(f, ".parquet") {
			t.Errorf("unexpected PT file name %q", f)
		}
	}
}

func TestVPTableAccessors(t *testing.T) {
	s := edgeStore(t)
	knows, _ := s.Dictionary().Lookup(rdf.NewIRI(testNS + "knows"))
	vt := s.VPTable(knows)
	if vt == nil {
		t.Fatalf("VPTable(knows) = nil")
	}
	if vt.Rows() != 4 {
		t.Errorf("knows VP rows = %d, want 4", vt.Rows())
	}
	if vt.FileBytes <= 0 {
		t.Errorf("knows VP FileBytes = %d", vt.FileBytes)
	}
	if s.VPTable(rdf.ID(9999)) != nil {
		t.Errorf("VPTable of unknown predicate not nil")
	}
}
