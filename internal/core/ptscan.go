package core

import (
	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

// patSpec is one pattern of a PT/IPT node prepared for scanning: which
// column it reads and what its value position contributes (a new output
// column, an equality constraint, or a bound-term membership test).
type patSpec struct {
	// pid is the pattern's predicate ID.
	pid rdf.ID
	// boundVal is the required value when the value position is a bound
	// term (NullID otherwise).
	boundVal rdf.ID
	// newCol is the output row index this pattern's variable fills, or
	// -1 when the pattern only constrains.
	newCol int
	// eqCol is the earlier output column this pattern's variable must
	// equal, or -1.
	eqCol int
	// eqKey constrains the value to equal the row key (?s p ?s).
	eqKey bool
}

// execPTNode answers a group of patterns sharing the key variable from
// the (inverse) Property Table with a single partition-parallel select:
// for every key holding all the required predicates, emit the cartesian
// combination of the (flattened) value lists — the flatten step the
// paper charges to multi-valued attributes (§3.1). Pushed-down FILTER
// predicates are tested on each candidate row inside the same scan
// stage, before it is materialized.
func (s *Store) execPTNode(e *engine.Exec, pt *PropertyTable, n *Node, pushed []compiledFilter) (*engine.Relation, error) {
	spec := s.ptNodeScan(pt, n)
	if spec.empty {
		return s.emptyRelation(append([]string{n.Key}, nodeValueVars(n, pt.mode)...)), nil
	}
	rowPred, err := rowPredicate(spec.schema, pushed)
	if err != nil {
		return nil, err
	}
	perPartDisk := pt.scanBytes(spec.preds) / int64(len(pt.parts))
	outParts := make([][]engine.Row, len(pt.parts))
	err = s.cluster.RunStage(e.Clock, e.Launch(false), "scan "+n.Label(), len(pt.parts), func(p int) (cluster.TaskStats, error) {
		arena := engine.NewRowArena(len(spec.schema), 0)
		processed := scanPTPartition(pt.parts[p], spec.specs, len(spec.schema), rowPred, arena.AppendCopy)
		outParts[p] = arena.Rows()
		return cluster.TaskStats{
			DiskBytes: perPartDisk,
			Rows:      processed + int64(arena.Len()),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return engine.NewRelation(spec.schema, outParts, n.Key), nil
}

// ptNodeScan is a PT/IPT node's scan recipe, shared by the
// materialized operator and the streaming pipeline source: the output
// schema, the per-pattern specs, and the predicate columns the pruned
// scan reads. empty marks a node some required predicate or bound term
// makes unanswerable.
type ptNodeScan struct {
	schema engine.Schema
	specs  []patSpec
	preds  []rdf.ID
	empty  bool
}

// ptNodeScan resolves a PT/IPT node's patterns against the dictionary
// and the table's columns into a scan recipe.
func (s *Store) ptNodeScan(pt *PropertyTable, n *Node) ptNodeScan {
	keyVar := n.Key
	schema := engine.Schema{keyVar}
	specs := make([]patSpec, 0, len(n.Patterns))
	preds := make([]rdf.ID, 0, len(n.Patterns))
	for _, tp := range n.Patterns {
		pid, ok := s.dict.Lookup(tp.P.Term)
		if !ok || !pt.HasColumn(pid) {
			return ptNodeScan{empty: true}
		}
		value := valueTerm(tp, pt.mode)
		spec := patSpec{pid: pid, newCol: -1, eqCol: -1}
		switch {
		case !value.IsVar():
			vid, ok := s.dict.Lookup(value.Term)
			if !ok {
				return ptNodeScan{empty: true}
			}
			spec.boundVal = vid
		case value.Var == keyVar:
			spec.eqKey = true
		default:
			if i := schema.Index(value.Var); i >= 0 {
				spec.eqCol = i
			} else {
				spec.newCol = len(schema)
				schema = append(schema, value.Var)
			}
		}
		specs = append(specs, spec)
		preds = append(preds, pid)
	}
	return ptNodeScan{schema: schema, specs: specs, preds: preds}
}

// nodeValueVars lists the node's value-position variables (used only to
// shape empty results, where column order is irrelevant).
func nodeValueVars(n *Node, mode ptKeyMode) []string {
	seen := map[string]bool{n.Key: true}
	var out []string
	for _, tp := range n.Patterns {
		v := valueTerm(tp, mode)
		if v.IsVar() && !seen[v.Var] {
			seen[v.Var] = true
			out = append(out, v.Var)
		}
	}
	return out
}

// valueTerm returns the pattern position holding the cell value: the
// object for the subject-keyed PT, the subject for the inverse PT.
func valueTerm(tp sparql.TriplePattern, mode ptKeyMode) sparql.PatternTerm {
	if mode == keyOnObject {
		return tp.S
	}
	return tp.O
}

// scanPTPartition scans one PT partition for the node's specs,
// yielding each emitted row and returning the number of keys examined.
// The yielded row is a reused scratch buffer — the callback MUST copy
// anything it retains (the materialized operator copies into a flat
// engine.RowArena; the streaming source copies into its current
// chunk's arena). A non-nil rowPred (pushed-down FILTER predicates)
// gates each candidate row before it is yielded.
func scanPTPartition(part *ptPartition, specs []patSpec, width int, rowPred func(engine.Row) bool, yield func(engine.Row)) int64 {
	cols := make([]*ptColumn, len(specs))
	driver := -1
	for i, sp := range specs {
		col := part.cols[sp.pid]
		if col == nil {
			return 0 // a required predicate has no cells here
		}
		cols[i] = col
		if driver < 0 || col.keys() < cols[driver].keys() {
			driver = i
		}
	}

	var processed int64
	scratch := make([]rdf.ID, 1)
	lists := make([][]rdf.ID, len(specs))
	emit := func(key rdf.ID) {
		// Gather each pattern's values for this key; bail out on any
		// missing or failed constraint that needs no prior bindings.
		for i, sp := range specs {
			vs := cols[i].lookup(key, scratch)
			if len(vs) == 0 {
				return
			}
			switch {
			case sp.boundVal != rdf.NullID:
				if !containsID(vs, sp.boundVal) {
					return
				}
				lists[i] = nil
			case sp.eqKey:
				if !containsID(vs, key) {
					return
				}
				lists[i] = nil
			default:
				// Copy: scratch is reused across specs.
				own := make([]rdf.ID, len(vs))
				copy(own, vs)
				lists[i] = own
			}
		}
		// Cartesian emission over the contributing patterns (the
		// multi-valued flatten), with repeated-variable equality.
		row := make(engine.Row, width)
		row[0] = key
		var rec func(i int)
		rec = func(i int) {
			if i == len(specs) {
				if rowPred == nil || rowPred(row) {
					yield(row)
				}
				return
			}
			sp := specs[i]
			if lists[i] == nil {
				rec(i + 1)
				return
			}
			for _, v := range lists[i] {
				switch {
				case sp.newCol >= 0:
					row[sp.newCol] = v
					rec(i + 1)
				case sp.eqCol >= 0:
					if v == row[sp.eqCol] {
						rec(i + 1)
					}
				default:
					rec(i + 1)
				}
			}
		}
		rec(0)
	}

	for key := range cols[driver].single {
		processed++
		emit(key)
	}
	for key := range cols[driver].multi {
		processed++
		emit(key)
	}
	return processed
}

// containsID reports whether vs contains v.
func containsID(vs []rdf.ID, v rdf.ID) bool {
	for _, x := range vs {
		if x == v {
			return true
		}
	}
	return false
}
