package core

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/columnar"
	"repro/internal/engine"
	"repro/internal/rdf"
)

// ptKeyMode selects which triple position keys the Property Table rows.
type ptKeyMode uint8

const (
	// keyOnSubject is the paper's Property Table (§3.1): one row per
	// distinct subject.
	keyOnSubject ptKeyMode = iota
	// keyOnObject is the future-work inverse Property Table (§5): one
	// row per distinct object, beneficial for patterns sharing an
	// object.
	keyOnObject
)

// PropertyTable is the wide table holding, per key (subject or object),
// the values of every predicate. It is horizontally partitioned on the
// key column so each row lives entirely on one node (paper §3.1), and
// multi-valued predicates are stored as lists that get flattened on
// access.
type PropertyTable struct {
	mode  ptKeyMode
	parts []*ptPartition
	// cols records which predicates have a column, mapping to whether
	// the column is multi-valued (a list column).
	cols map[rdf.ID]bool
	// colBytes is each predicate column's total on-HDFS size, the unit
	// of column-pruned scan charging.
	colBytes map[rdf.ID]int64
	// keyBytes is the key column's total on-HDFS size.
	keyBytes int64
	// fileBytes is the table's full on-HDFS size (columns + local
	// dictionaries).
	fileBytes int64
	// numKeys is the number of rows (distinct keys).
	numKeys int
}

// ptPartition is one horizontal partition: per-predicate hash maps from
// key to value(s). Single-valued entries live in single; keys with more
// than one value live in multi.
type ptPartition struct {
	cols map[rdf.ID]*ptColumn
}

// ptColumn holds one predicate's cells within a partition.
type ptColumn struct {
	single map[rdf.ID]rdf.ID
	multi  map[rdf.ID][]rdf.ID
}

func newPTColumn() *ptColumn {
	return &ptColumn{single: make(map[rdf.ID]rdf.ID)}
}

// add appends a value for key, promoting the cell to multi-valued when a
// second value arrives.
func (c *ptColumn) add(key, value rdf.ID) {
	if vs, ok := c.multi[key]; ok {
		c.multi[key] = append(vs, value)
		return
	}
	if v, ok := c.single[key]; ok {
		if c.multi == nil {
			c.multi = make(map[rdf.ID][]rdf.ID)
		}
		c.multi[key] = []rdf.ID{v, value}
		delete(c.single, key)
		return
	}
	c.single[key] = value
}

// lookup returns the values stored for key. The returned slice aliases
// internal storage for multi-valued cells; callers must not mutate it.
// The scratch buffer (len ≥ 1) avoids allocation for single values.
func (c *ptColumn) lookup(key rdf.ID, scratch []rdf.ID) []rdf.ID {
	if v, ok := c.single[key]; ok {
		scratch[0] = v
		return scratch[:1]
	}
	return c.multi[key]
}

// keys returns the number of keys with at least one value.
func (c *ptColumn) keys() int { return len(c.single) + len(c.multi) }

// Columns returns the number of predicate columns.
func (t *PropertyTable) Columns() int { return len(t.cols) }

// Rows returns the number of distinct keys (table rows).
func (t *PropertyTable) Rows() int { return t.numKeys }

// FileBytes returns the table's on-HDFS size.
func (t *PropertyTable) FileBytes() int64 { return t.fileBytes }

// MultiValued reports whether the predicate's column stores lists.
func (t *PropertyTable) MultiValued(p rdf.ID) bool { return t.cols[p] }

// HasColumn reports whether the predicate occurs in the table.
func (t *PropertyTable) HasColumn(p rdf.ID) bool {
	_, ok := t.cols[p]
	return ok
}

// scanBytes returns the bytes a column-pruned scan of the given
// predicates reads: the key column plus each requested predicate column.
func (t *PropertyTable) scanBytes(preds []rdf.ID) int64 {
	total := t.keyBytes
	for _, p := range preds {
		total += t.colBytes[p]
	}
	return total
}

// buildPropertyTable groups the dataset by key (subject or object),
// partitions the keys with the engine's canonical placement, encodes
// each partition as a columnar file, writes it to HDFS and charges the
// clock for the shuffle and replicated write.
func buildPropertyTable(s *Store, clock *cluster.Clock, mode ptKeyMode) (*PropertyTable, error) {
	t := &PropertyTable{
		mode:     mode,
		parts:    make([]*ptPartition, s.parts),
		cols:     make(map[rdf.ID]bool),
		colBytes: make(map[rdf.ID]int64),
	}
	for i := range t.parts {
		t.parts[i] = &ptPartition{cols: make(map[rdf.ID]*ptColumn)}
	}

	// Distribute cells; detect multi-valuedness per predicate.
	keysSeen := make(map[rdf.ID]struct{})
	for _, tr := range s.triples {
		key, value := tr.S, tr.O
		if mode == keyOnObject {
			key, value = tr.O, tr.S
		}
		p := engine.PartitionFor(key, s.parts)
		col, ok := t.parts[p].cols[tr.P]
		if !ok {
			col = newPTColumn()
			t.parts[p].cols[tr.P] = col
		}
		col.add(key, value)
		keysSeen[key] = struct{}{}
	}
	t.numKeys = len(keysSeen)
	for _, pred := range s.predOrder {
		multi := false
		for _, part := range t.parts {
			if col, ok := part.cols[pred]; ok && len(col.multi) > 0 {
				multi = true
				break
			}
		}
		t.cols[pred] = multi
	}

	// Encode each partition as one columnar file and write it to HDFS.
	prefix := s.opts.PathPrefix + "/pt"
	if mode == keyOnObject {
		prefix = s.opts.PathPrefix + "/ipt"
	}
	var totalWrite int64
	for pi, part := range t.parts {
		file, localTerms, err := encodePTPartition(s, part, t.cols)
		if err != nil {
			return nil, err
		}
		size := file.SizeBytes() + compressedStringBytes(s.dict, localTerms)
		path := fmt.Sprintf("%s/part-%05d.parquet", prefix, pi)
		if _, err := s.fs.Write(path, size); err != nil {
			return nil, err
		}
		t.fileBytes += size
		totalWrite += size
		t.keyBytes += keyColumnBytes(file)
		for _, pred := range s.predOrder {
			name := ptColumnName(s.dict, pred)
			if file.HasColumn(name) {
				cb, err := file.ColumnSizeBytes(name)
				if err != nil {
					return nil, err
				}
				t.colBytes[pred] += cb
			}
		}
	}

	// Charge: one wide shuffle (every triple moves to its key's
	// partition) plus the replicated write.
	shuffleBytes := int64(len(s.triples)) * 3 * 5
	writeBytes := totalWrite * int64(replicationOf(s))
	name := "build property table"
	if mode == keyOnObject {
		name = "build inverse property table"
	}
	err := s.cluster.RunStage(clock, s.cluster.Config().Cost.SQLStageLaunch, name, s.parts, func(p int) (cluster.TaskStats, error) {
		return cluster.TaskStats{
			Rows:      int64(len(s.triples)) / int64(s.parts),
			NetBytes:  shuffleBytes / int64(s.parts),
			DiskBytes: writeBytes / int64(s.parts),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// ptColumnName is the columnar-file column name for a predicate.
func ptColumnName(dict *rdf.Dictionary, pred rdf.ID) string {
	return dict.Term(pred).Value
}

// keyColumnBytes returns the key column's size within one partition file.
func keyColumnBytes(f *columnar.File) int64 {
	n, err := f.ColumnSizeBytes("key")
	if err != nil {
		return 0
	}
	return n
}

// encodePTPartition lays one partition out as a columnar file: a key
// column plus one column per predicate (scalar when globally
// single-valued, list otherwise), with NULL/empty cells for absent
// pairs — the NULL-dense layout that RLE makes cheap (paper §3.1).
func encodePTPartition(s *Store, part *ptPartition, multiByPred map[rdf.ID]bool) (*columnar.File, map[rdf.ID]struct{}, error) {
	// Row order: all keys present in this partition, ascending.
	keySet := make(map[rdf.ID]struct{})
	for _, col := range part.cols {
		for k := range col.single {
			keySet[k] = struct{}{}
		}
		for k := range col.multi {
			keySet[k] = struct{}{}
		}
	}
	keys := make([]rdf.ID, 0, len(keySet))
	for k := range keySet {
		keys = append(keys, k)
	}
	sortIDs(keys)

	localTerms := make(map[rdf.ID]struct{}, len(keys)*2)
	for _, k := range keys {
		localTerms[k] = struct{}{}
	}

	w := columnar.NewWriter(0)
	w.AddScalar("key", keys)
	scratch := make([]rdf.ID, 1)
	for _, pred := range s.predOrder {
		name := ptColumnName(s.dict, pred)
		col := part.cols[pred]
		if multiByPred[pred] {
			lists := make([][]rdf.ID, len(keys))
			if col != nil {
				for i, k := range keys {
					vs := col.lookup(k, scratch)
					if len(vs) > 0 {
						row := make([]rdf.ID, len(vs))
						copy(row, vs)
						lists[i] = row
						for _, v := range vs {
							localTerms[v] = struct{}{}
						}
					}
				}
			}
			w.AddList(name, lists)
		} else {
			vals := make([]rdf.ID, len(keys))
			if col != nil {
				for i, k := range keys {
					if v, ok := col.single[k]; ok {
						vals[i] = v
						localTerms[v] = struct{}{}
					}
				}
			}
			w.AddScalar(name, vals)
		}
	}
	f, err := w.Finish()
	if err != nil {
		return nil, nil, fmt.Errorf("encoding property table partition: %w", err)
	}
	return f, localTerms, nil
}

// sortIDs sorts IDs ascending in place.
func sortIDs(ids []rdf.ID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
