package core

// Extended-surface planning: OPTIONAL, UNION, ORDER BY/LIMIT and
// GROUP BY/COUNT queries route through planExtended, which runs every
// UNION branch's BGP (and every OPTIONAL group's) through the
// unchanged translate + cost-plan pipeline, then grafts the per-group
// plans into one physical plan via plan.Extend. The per-group plans
// carry leaf and filter indexes local to their own group; this file
// offsets them into the query-global lists so the scheduler executes
// the composed plan with one node list and one compiled-filter list.

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

// planExtended translates and plans an extended query: each group is
// planned independently (reusing filter pushdown, join ordering and
// physical join selection), then the extended operators are composed
// on top. The returned entry's node list is the concatenation of every
// group's Join Tree nodes, in branch order (base first, then its
// OPTIONAL groups) — the same order extendedFilterList concatenates
// filters in, so the plan's offset leaf and filter indexes line up.
func (s *Store) planExtended(snap *statsSnapshot, q *sparql.Query, mode plan.Mode, opts QueryOptions) (*cachedPlan, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	var (
		allNodes []*Node
		leaves   []plan.Leaf
		labels   []string
	)
	planGroup := func(pats []sparql.TriplePattern, fs []sparql.Filter) (*plan.Plan, error) {
		// The synthetic per-group query projects every pattern variable
		// (sorted, so the group's output schema is planner-mode
		// independent) and carries no limit: LIMIT/OFFSET belong to the
		// composed plan's TopK operator, never to a group.
		gq := &sparql.Query{
			Vars:     sortedPatternVars(pats),
			Patterns: pats,
			Filters:  fs,
			Limit:    -1,
		}
		tree, err := s.translateWith(snap.col, gq, opts.Strategy)
		if err != nil {
			return nil, err
		}
		if mode == plan.ModeNaive {
			naiveOrder(tree, gq)
		}
		pl := s.buildPlan(snap.col, tree, gq, mode, opts)
		if pl == nil {
			return nil, fmt.Errorf("core: query group has no patterns")
		}
		offsetPlanRefs(pl.Root, len(leaves), len(labels))
		allNodes = append(allNodes, tree.Nodes...)
		leaves = append(leaves, pl.Leaves...)
		labels = append(labels, pl.FilterLabels...)
		return pl, nil
	}

	branches := q.BranchGroups()
	spec := plan.ExtendSpec{
		BranchVars: branches[0].Vars(),
		Projection: q.Projection(),
		Distinct:   q.Distinct,
		GroupBy:    q.GroupBy,
		Limit:      q.Limit,
		Offset:     q.Offset,
	}
	for bi := range branches {
		g := &branches[bi]
		base, err := planGroup(g.Patterns, g.Filters)
		if err != nil {
			return nil, err
		}
		br := plan.BranchSpec{Base: base}
		for oi := range g.Optionals {
			og := &g.Optionals[oi]
			opl, err := planGroup(og.Patterns, og.Filters)
			if err != nil {
				return nil, err
			}
			br.Optionals = append(br.Optionals, opl)
		}
		spec.Branches = append(spec.Branches, br)
	}
	for _, c := range q.Counts {
		spec.Counts = append(spec.Counts, plan.CountAgg{Var: c.Var, As: c.Alias})
	}
	for _, k := range q.Order {
		spec.Order = append(spec.Order, plan.SortKey{Col: k.Var, Desc: k.Desc})
	}
	spec.Leaves = leaves
	spec.FilterLabels = labels
	return &cachedPlan{nodes: allNodes, plan: plan.Extend(spec)}, nil
}

// offsetPlanRefs rebases a group plan's leaf and filter indexes into
// the query-global lists the composed plan carries.
func offsetPlanRefs(n *plan.Node, leafOff, filterOff int) {
	if n.Op == plan.OpScan {
		n.Leaf += leafOff
	}
	for i := range n.Filters {
		n.Filters[i] += filterOff
	}
	for _, c := range n.Children {
		offsetPlanRefs(c, leafOff, filterOff)
	}
}

// extendedFilterList concatenates every group's FILTERs in the exact
// order planExtended plans the groups (per branch: base, then its
// OPTIONAL groups), matching the composed plan's global filter
// indexes. For a plain single-BGP query this is q.Filters.
func extendedFilterList(q *sparql.Query) []sparql.Filter {
	branches := q.BranchGroups()
	var out []sparql.Filter
	for bi := range branches {
		g := &branches[bi]
		out = append(out, g.Filters...)
		for oi := range g.Optionals {
			out = append(out, g.Optionals[oi].Filters...)
		}
	}
	return out
}

// sortedPatternVars returns the distinct variables of a pattern list,
// sorted — the planner-mode-independent projection of a synthetic
// per-group query.
func sortedPatternVars(pats []sparql.TriplePattern) []string {
	seen := map[string]bool{}
	for _, tp := range pats {
		for _, v := range tp.Vars() {
			seen[v] = true
		}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// topkLess compiles a TopK node's sort keys into a row comparator over
// the node's column order. ORDER BY keys compare by term (numeric for
// integer literals, dictionary term order otherwise) with unbound
// cells first; COUNT columns compare by their raw count value. Ties —
// including the no-ORDER-BY case — break by raw dictionary-ID order
// over the full row, a total order that is identical across planner
// modes, strategies and both executors (the TopK node sits above the
// final projection, so its column order is the projection). That total
// order is what makes limited results deterministic.
func (s *Store) topkLess(n *plan.Node) func(a, b engine.Row) bool {
	type sortCol struct {
		col   int
		desc  bool
		count bool
	}
	keys := make([]sortCol, 0, len(n.Sort))
	for _, k := range n.Sort {
		for j, v := range n.Vars {
			if v == k.Col {
				keys = append(keys, sortCol{
					col:   j,
					desc:  k.Desc,
					count: j < len(n.CountCols) && n.CountCols[j],
				})
				break
			}
		}
	}
	return func(a, b engine.Row) bool {
		for _, k := range keys {
			c := s.compareCell(a[k.col], b[k.col], k.count)
			if k.desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		for j := range a {
			if j < len(b) && a[j] != b[j] {
				return a[j] < b[j]
			}
		}
		return false
	}
}

// compareCell three-way compares two row cells of one column. Count
// columns hold raw counts, compared numerically; term columns compare
// unbound (NullID) first, then by CompareTermIDs (numeric for integer
// literals, deterministic term order otherwise).
func (s *Store) compareCell(x, y rdf.ID, isCount bool) int {
	if x == y {
		return 0
	}
	if isCount {
		if x < y {
			return -1
		}
		return 1
	}
	if x == rdf.NullID {
		return -1
	}
	if y == rdf.NullID {
		return 1
	}
	return engine.CompareTermIDs(s.dict, x, y)
}

// decodeCell turns one result cell into a term: COUNT columns hold raw
// counts (decoded to xsd:integer literals), NullID is an unbound
// OPTIONAL variable (decoded to the zero Term — callers render it as
// an empty binding), everything else is a dictionary ID.
func (s *Store) decodeCell(id rdf.ID, isCount bool) rdf.Term {
	if isCount {
		return rdf.NewTypedLiteral(strconv.FormatUint(uint64(id), 10), rdf.XSDInteger)
	}
	if id == rdf.NullID {
		return rdf.Term{}
	}
	return s.dict.Term(id)
}
