package core

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/columnar"
	"repro/internal/engine"
	"repro/internal/rdf"
)

// VPTable is one Vertical Partitioning table: the (subject, object)
// pairs of a single predicate (Abadi et al.; paper §3.1), kept
// subject-partitioned in memory and written to HDFS as a columnar file
// per partition.
type VPTable struct {
	// Pred is the table's predicate ID.
	Pred rdf.ID
	// Rel holds the (s,o) rows hash-partitioned by subject.
	Rel *engine.Relation
	// FileBytes is the table's total on-HDFS size, charged on scans.
	FileBytes int64
}

// Rows returns the table's tuple count.
func (t *VPTable) Rows() int { return t.Rel.NumRows() }

// buildVP groups the dataset by predicate and materializes one VP table
// per predicate: partition rows by subject, encode each partition as a
// columnar file (IDs plus a local term dictionary, like a Parquet file),
// write it to HDFS, and charge the shuffle + write to the clock.
func (s *Store) buildVP(clock *cluster.Clock) error {
	// Emit each predicate's (s,o) rows through one pre-sized RowArena —
	// the engine's flat row representation — instead of allocating a
	// two-value Row per triple.
	counts := make(map[rdf.ID]int)
	for _, t := range s.triples {
		counts[t.P]++
	}
	arenas := make(map[rdf.ID]*engine.RowArena, len(counts))
	for p, c := range counts {
		arenas[p] = engine.NewRowArena(2, c)
	}
	for _, t := range s.triples {
		arenas[t.P].AppendCopy(engine.Row{t.S, t.O})
	}
	byPred := make(map[rdf.ID][]engine.Row, len(arenas))
	for p, a := range arenas {
		byPred[p] = a.Rows()
	}
	s.predOrder = sortedPredicates(s.dict, s.curStats())

	var totalShuffleBytes, totalWriteBytes int64
	var totalRows int64
	for _, pred := range s.predOrder {
		rows := byPred[pred]
		rel, err := engine.Partition(engine.Schema{"s", "o"}, rows, "s", s.parts)
		if err != nil {
			return err
		}
		var fileBytes int64
		for p := 0; p < rel.Partitions(); p++ {
			part := rel.Part(p)
			subjCol := make([]rdf.ID, len(part))
			objCol := make([]rdf.ID, len(part))
			localTerms := make(map[rdf.ID]struct{}, 2*len(part))
			for i, r := range part {
				subjCol[i] = r[0]
				objCol[i] = r[1]
				localTerms[r[0]] = struct{}{}
				localTerms[r[1]] = struct{}{}
			}
			w := columnar.NewWriter(0)
			w.AddScalar("s", subjCol)
			w.AddScalar("o", objCol)
			f, err := w.Finish()
			if err != nil {
				return fmt.Errorf("encoding VP partition %d of predicate %d: %w", p, pred, err)
			}
			size := f.SizeBytes() + compressedStringBytes(s.dict, localTerms)
			path := fmt.Sprintf("%s/vp/p%d/part-%05d.parquet", s.opts.PathPrefix, pred, p)
			if _, err := s.fs.Write(path, size); err != nil {
				return err
			}
			fileBytes += size
		}
		s.vp[pred] = &VPTable{Pred: pred, Rel: rel, FileBytes: fileBytes}
		totalShuffleBytes += int64(len(rows)) * 2 * 5          // rows repartitioned by subject
		totalWriteBytes += fileBytes * int64(replicationOf(s)) // replicated write
		totalRows += int64(len(rows))
	}

	// One Spark SQL job covers the whole VP build (a single
	// partitionBy(predicate) write in the real system).
	perPart := func(total int64) int64 { return total / int64(s.parts) }
	return s.cluster.RunStage(clock, s.cluster.Config().Cost.SQLStageLaunch, "build VP tables", s.parts, func(p int) (cluster.TaskStats, error) {
		return cluster.TaskStats{
			Rows:      totalRows / int64(s.parts),
			NetBytes:  perPart(totalShuffleBytes),
			DiskBytes: perPart(totalWriteBytes),
		}, nil
	})
}

// replicationOf returns the store's HDFS replication factor.
func replicationOf(s *Store) int { return s.fs.Config().Replication }
