package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sparql"
	"repro/internal/stats"
)

// NodeKind identifies which storage structure a Join Tree node reads.
type NodeKind uint8

// Join Tree node kinds.
const (
	// NodeVP answers one triple pattern from a Vertical Partitioning
	// table.
	NodeVP NodeKind = iota
	// NodePT answers a group of same-subject patterns from the Property
	// Table with a single select (the joins the paper's strategy
	// avoids).
	NodePT
	// NodeIPT answers a group of same-object patterns from the inverse
	// Property Table (future-work extension).
	NodeIPT
	// NodeTriples answers a variable-predicate pattern from the raw
	// triple data (fallback; never produced for the WatDiv workload).
	NodeTriples
)

// String implements fmt.Stringer.
func (k NodeKind) String() string {
	switch k {
	case NodeVP:
		return "VP"
	case NodePT:
		return "PT"
	case NodeIPT:
		return "IPT"
	case NodeTriples:
		return "TT"
	default:
		return fmt.Sprintf("NodeKind(%d)", uint8(k))
	}
}

// Node is one Join Tree node: a sub-query answered from one storage
// structure (paper §3.2).
type Node struct {
	// Kind selects the storage structure.
	Kind NodeKind
	// Patterns is the node's triple patterns: exactly one for VP and
	// Triples nodes, two or more for PT/IPT nodes.
	Patterns []sparql.TriplePattern
	// Key is the grouping variable: the shared subject variable for PT
	// nodes, the shared object variable for IPT nodes, empty otherwise.
	Key string
	// Priority orders execution: higher-priority nodes are computed
	// first (pushed toward the leaves); the lowest-priority node is the
	// root, joined last (paper §3.3).
	Priority float64
}

// Vars returns the node's output variables in pattern order.
func (n *Node) Vars() []string {
	seen := map[string]bool{}
	var out []string
	for _, tp := range n.Patterns {
		for _, v := range tp.Vars() {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

// Label renders a short display name, e.g. "PT(?v0: follows,likes)".
func (n *Node) Label() string {
	var preds []string
	for _, tp := range n.Patterns {
		if tp.P.IsVar() {
			preds = append(preds, "?"+tp.P.Var)
		} else {
			preds = append(preds, localName(tp.P.Term.Value))
		}
	}
	switch n.Kind {
	case NodePT, NodeIPT:
		return fmt.Sprintf("%s(?%s: %s)", n.Kind, n.Key, strings.Join(preds, ","))
	default:
		return fmt.Sprintf("%s(%s)", n.Kind, strings.Join(preds, ","))
	}
}

// localName trims an IRI to its final path/fragment segment.
func localName(iri string) string {
	if i := strings.LastIndexAny(iri, "/#"); i >= 0 && i+1 < len(iri) {
		return iri[i+1:]
	}
	return iri
}

// JoinTree is the translated query: nodes in execution order (leaves
// first, root last). Execution joins them left-deep, which computes
// exactly the bottom-up order the paper describes.
type JoinTree struct {
	// Nodes is the execution order.
	Nodes []*Node
}

// Root returns the node joined last (the paper's tree root), or nil for
// an empty tree.
func (t *JoinTree) Root() *Node {
	if len(t.Nodes) == 0 {
		return nil
	}
	return t.Nodes[len(t.Nodes)-1]
}

// String renders the tree as an execution-ordered list with priorities.
func (t *JoinTree) String() string {
	var sb strings.Builder
	for i, n := range t.Nodes {
		role := "node"
		if i == len(t.Nodes)-1 {
			role = "root"
		}
		fmt.Fprintf(&sb, "%2d. %-6s %-50s priority=%.3g\n", i+1, role, n.Label(), n.Priority)
	}
	return sb.String()
}

// Translate turns a parsed query's BGP into a Join Tree under the given
// strategy, using the store's statistics for node priorities (paper
// §3.2–3.3). The Join Tree references only pattern structure and
// statistics, so it can be built (and inspected) without executing.
func (s *Store) Translate(q *sparql.Query, strategy Strategy) (*JoinTree, error) {
	return s.translateWith(s.curStats(), q, strategy)
}

// translateWith is Translate against an explicit statistics snapshot,
// so one query's translation and planning read a single consistent
// collection even when a reload lands mid-flight.
func (s *Store) translateWith(st *stats.Collection, q *sparql.Query, strategy Strategy) (*JoinTree, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if strategy == StrategyMixedIPT && s.ipt == nil {
		return nil, fmt.Errorf("core: StrategyMixedIPT requires a store loaded with BuildInversePT")
	}
	nodes := s.groupPatterns(q, strategy)
	for _, n := range nodes {
		n.Priority = s.scoreNode(st, n)
	}
	ordered := s.orderNodes(st, nodes)
	return &JoinTree{Nodes: ordered}, nil
}

// groupPatterns assigns patterns to nodes. Under Mixed strategies,
// patterns sharing a subject variable (with bound predicates) collapse
// into a PT node when the group has at least two members; under
// MixedIPT the leftovers are additionally grouped by shared object
// variable into IPT nodes. Everything else becomes one VP (or Triples)
// node per pattern.
func (s *Store) groupPatterns(q *sparql.Query, strategy Strategy) []*Node {
	var nodes []*Node
	remaining := make([]sparql.TriplePattern, len(q.Patterns))
	copy(remaining, q.Patterns)

	if strategy == StrategyMixed || strategy == StrategyMixedIPT {
		remaining = groupByKey(remaining, subjectVarOf, NodePT, &nodes)
	}
	if strategy == StrategyMixedIPT {
		remaining = groupByKey(remaining, objectVarOf, NodeIPT, &nodes)
	}
	for _, tp := range remaining {
		kind := NodeVP
		if tp.P.IsVar() {
			kind = NodeTriples
		}
		nodes = append(nodes, &Node{Kind: kind, Patterns: []sparql.TriplePattern{tp}})
	}
	return nodes
}

// subjectVarOf returns the grouping key for PT nodes: the subject
// variable of patterns with a bound predicate.
func subjectVarOf(tp sparql.TriplePattern) string {
	if tp.S.IsVar() && !tp.P.IsVar() {
		return tp.S.Var
	}
	return ""
}

// objectVarOf returns the grouping key for IPT nodes: the object
// variable of patterns with a bound predicate.
func objectVarOf(tp sparql.TriplePattern) string {
	if tp.O.IsVar() && !tp.P.IsVar() {
		return tp.O.Var
	}
	return ""
}

// groupByKey extracts groups of ≥2 patterns sharing a key into nodes of
// the given kind, returning the ungrouped remainder in original order.
func groupByKey(pats []sparql.TriplePattern, keyOf func(sparql.TriplePattern) string, kind NodeKind, nodes *[]*Node) []sparql.TriplePattern {
	groups := make(map[string][]sparql.TriplePattern)
	var keyOrder []string
	for _, tp := range pats {
		k := keyOf(tp)
		if k == "" {
			continue
		}
		if _, seen := groups[k]; !seen {
			keyOrder = append(keyOrder, k)
		}
		groups[k] = append(groups[k], tp)
	}
	grouped := make(map[string]bool)
	for _, k := range keyOrder {
		if len(groups[k]) >= 2 {
			*nodes = append(*nodes, &Node{Kind: kind, Patterns: groups[k], Key: k})
			grouped[k] = true
		}
	}
	var rest []sparql.TriplePattern
	for _, tp := range pats {
		if k := keyOf(tp); k != "" && grouped[k] {
			continue
		}
		rest = append(rest, tp)
	}
	return rest
}

// Priority magnitudes. Bound terms are strong selectivity signals: the
// paper scores literal-bearing patterns with "the highest priority" and
// weights literals "heavily" inside PT nodes. Bound IRI objects (the
// other constant form WatDiv uses) get a smaller boost, and the size
// estimate is subtracted so that among equally constrained nodes the
// smaller one still runs first.
const (
	literalBoost  = 2e15
	boundIRIBoost = 1e15
	boundSubjBump = 5e14
)

// scoreNode implements the paper's three scoring rules (§3.3).
func (s *Store) scoreNode(st *stats.Collection, n *Node) float64 {
	var boost float64
	sizeEst := -1.0
	for _, tp := range n.Patterns {
		boost += patternBoost(tp)
		est := s.patternSize(st, tp)
		if sizeEst < 0 || est < sizeEst {
			sizeEst = est
		}
	}
	// A PT node's output is bounded by its most selective pattern: the
	// node intersects the subject sets of all its patterns, so the
	// minimum estimate is used for single patterns and groups alike.
	return boost - sizeEst
}

// patternBoost scores the constants of one pattern.
func patternBoost(tp sparql.TriplePattern) float64 {
	var b float64
	if !tp.O.IsVar() {
		if tp.O.Term.IsLiteral() {
			b += literalBoost
		} else {
			b += boundIRIBoost
		}
	}
	if !tp.S.IsVar() {
		b += boundSubjBump
	}
	return b
}

// patternSize estimates a pattern's tuple count: the predicate's triple
// count adjusted by its distinct-subject ratio, so predicates with heavy
// object fan-out (many triples per subject) sink toward the root.
func (s *Store) patternSize(st *stats.Collection, tp sparql.TriplePattern) float64 {
	if tp.P.IsVar() {
		return float64(st.TotalTriples)
	}
	pid, ok := s.dict.Lookup(tp.P.Term)
	if !ok {
		return 0 // unseen predicate: empty result, cheapest possible
	}
	ps := st.Predicate(pid)
	// Adjustment (paper: "adjusted according to the number of distinct
	// subjects"): multi-valued predicates produce more join fan-out per
	// subject, so their effective size grows by the inverse subject
	// ratio, up to 2×.
	return float64(ps.Triples) * (2 - ps.SubjectsPerTriple())
}

// orderNodes produces the execution order. The start node is the
// highest-priority one (literal-constrained patterns first, paper
// §3.3); each following step picks, among the nodes sharing a variable
// with what has been joined so far, the one whose estimated join output
// is smallest under the textbook independence assumption
// |A ⋈ B| ≈ |A|·|B| / max(d_A(v), d_B(v)) over the shared variables,
// with d taken from the loader's distinct-subject/object statistics.
// The largest node therefore sinks to the end — the paper's root.
func (s *Store) orderNodes(st *stats.Collection, nodes []*Node) []*Node {
	if len(nodes) == 0 {
		return nil
	}
	pending := make([]*Node, len(nodes))
	copy(pending, nodes)
	sort.SliceStable(pending, func(i, j int) bool {
		if pending[i].Priority != pending[j].Priority {
			return pending[i].Priority > pending[j].Priority
		}
		return pending[i].Label() < pending[j].Label()
	})

	var order []*Node
	curDist := map[string]float64{}
	var curSize float64
	take := func(i int, joinedSize float64) {
		n := pending[i]
		order = append(order, n)
		size, dist := s.nodeEstimate(st, n)
		_ = size
		for v, d := range dist {
			if prev, ok := curDist[v]; !ok || d < prev {
				curDist[v] = d
			}
		}
		curSize = joinedSize
		pending = append(pending[:i], pending[i+1:]...)
	}
	startSize, _ := s.nodeEstimate(st, pending[0])
	take(0, startSize)
	for len(pending) > 0 {
		best, bestEst := -1, 0.0
		for i, n := range pending {
			size, dist := s.nodeEstimate(st, n)
			denom := 0.0
			for v, d := range dist {
				if cd, ok := curDist[v]; ok {
					shared := cd
					if d > shared {
						shared = d
					}
					if shared > denom {
						denom = shared
					}
				}
			}
			if denom == 0 {
				continue // no shared variable
			}
			est := curSize * size / denom
			if best < 0 || est < bestEst {
				best, bestEst = i, est
			}
		}
		if best < 0 {
			// Disconnected BGP: fall back to priority order; the join
			// becomes a cartesian product whichever node is chosen.
			size, _ := s.nodeEstimate(st, pending[0])
			take(0, curSize*size)
			continue
		}
		if bestEst < 1 {
			bestEst = 1
		}
		take(best, bestEst)
	}
	return order
}

// nodeEstimate returns a node's estimated output cardinality and, per
// output variable, an estimated distinct-value count, both derived from
// the per-predicate statistics gathered at load time.
func (s *Store) nodeEstimate(st *stats.Collection, n *Node) (float64, map[string]float64) {
	dist := map[string]float64{}
	size := -1.0
	for _, tp := range n.Patterns {
		base, svD, ovD := s.patternEstimate(st, tp, n.Kind == NodeIPT)
		if size < 0 || base < size {
			size = base
		}
		if tp.S.IsVar() {
			if prev, ok := dist[tp.S.Var]; !ok || svD < prev {
				dist[tp.S.Var] = svD
			}
		}
		if tp.O.IsVar() {
			if prev, ok := dist[tp.O.Var]; !ok || ovD < prev {
				dist[tp.O.Var] = ovD
			}
		}
		if tp.P.IsVar() {
			dist[tp.P.Var] = float64(len(st.ByPredicate))
		}
	}
	if size < 0 {
		size = 0
	}
	// No variable can have more distinct values than the node has rows.
	for v, d := range dist {
		if d > size {
			dist[v] = size
		}
	}
	return size, dist
}

// patternEstimate returns (rows, distinct subjects, distinct objects)
// for one pattern after applying its bound positions.
func (s *Store) patternEstimate(st *stats.Collection, tp sparql.TriplePattern, inverse bool) (rows, subjD, objD float64) {
	if tp.P.IsVar() {
		t := float64(st.TotalTriples)
		return t, float64(st.DistinctSubjects), float64(st.DistinctObjects)
	}
	pid, ok := s.dict.Lookup(tp.P.Term)
	if !ok {
		return 0, 0, 0
	}
	ps := st.Predicate(pid)
	rows = float64(ps.Triples)
	subjD = float64(ps.DistinctSubjects)
	objD = float64(ps.DistinctObjects)
	if subjD < 1 {
		subjD = 1
	}
	if objD < 1 {
		objD = 1
	}
	if !tp.O.IsVar() {
		rows /= objD
	}
	if !tp.S.IsVar() {
		rows /= subjD
	}
	_ = inverse
	return rows, subjD, objD
}
