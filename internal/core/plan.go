package core

import (
	"fmt"
	"strings"

	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/sparql"
)

// PlannerMode selects how a query's physical plan is produced.
type PlannerMode uint8

// Planner modes.
const (
	// PlannerCost (the default) orders joins by greedy cost-based
	// enumeration over cardinality estimates and selects each join's
	// physical method by pricing broadcast vs. shuffle on estimated
	// input sizes.
	PlannerCost PlannerMode = iota
	// PlannerHeuristic keeps the paper's §3.3 priority ordering and the
	// engine's runtime (threshold-based) join selection — the mode that
	// reproduces the paper's measurements.
	PlannerHeuristic
	// PlannerNaive keeps the query's written pattern order (the A1
	// ablation baseline).
	PlannerNaive
	// PlannerCostLeftDeep is the cost-based planner restricted to
	// left-deep chains — the ablation baseline the bushy planner is
	// measured against.
	PlannerCostLeftDeep
)

// String implements fmt.Stringer.
func (m PlannerMode) String() string {
	switch m {
	case PlannerCost:
		return "cost"
	case PlannerHeuristic:
		return "heuristic"
	case PlannerNaive:
		return "naive"
	case PlannerCostLeftDeep:
		return "cost-leftdeep"
	default:
		return fmt.Sprintf("PlannerMode(%d)", uint8(m))
	}
}

// PlannerModeNames lists the values ParsePlannerMode accepts, in
// documentation order — the single source CLI flags and error messages
// quote, so an invalid -planner value always names every valid one.
func PlannerModeNames() []string {
	return []string{"cost", "cost-leftdeep", "heuristic", "naive"}
}

// ParsePlannerMode maps a CLI flag value to a PlannerMode. Unknown
// values are rejected with an error listing every valid mode.
func ParsePlannerMode(s string) (PlannerMode, error) {
	switch s {
	case "cost", "":
		return PlannerCost, nil
	case "cost-leftdeep":
		return PlannerCostLeftDeep, nil
	case "heuristic":
		return PlannerHeuristic, nil
	case "naive":
		return PlannerNaive, nil
	default:
		return 0, fmt.Errorf("core: unknown planner mode %q (valid modes: %s)",
			s, strings.Join(PlannerModeNames(), ", "))
	}
}

// planMode resolves the options' planner selection, honouring the
// legacy NaiveOrder knob.
func (o QueryOptions) planMode() plan.Mode {
	if o.NaiveOrder || o.Planner == PlannerNaive {
		return plan.ModeNaive
	}
	switch o.Planner {
	case PlannerHeuristic:
		return plan.ModeHeuristic
	case PlannerCostLeftDeep:
		return plan.ModeCostLeftDeep
	default:
		return plan.ModeCost
	}
}

// Plan translates a query and builds its physical plan without
// executing it — the entry point for EXPLAIN and planner benchmarks.
func (s *Store) Plan(q *sparql.Query, opts QueryOptions) (*plan.Plan, error) {
	tree, err := s.Translate(q, opts.Strategy)
	if err != nil {
		return nil, err
	}
	mode := opts.planMode()
	if mode == plan.ModeNaive {
		naiveOrder(tree, q)
	}
	return s.buildPlan(tree, q, mode, opts), nil
}

// buildPlan converts the ordered Join Tree to planner leaves and runs
// the optimizer passes.
func (s *Store) buildPlan(tree *JoinTree, q *sparql.Query, mode plan.Mode, opts QueryOptions) *plan.Plan {
	leaves := s.planLeaves(tree)
	specs := filterSpecs(q, leaves)
	return plan.Build(leaves, specs, q.Projection(), q.Distinct, mode, s.planCosts(opts))
}

// planLeaves describes each Join Tree node to the planner: output
// schema in engine column order, statistics-based cardinality and
// distinct estimates, and the partitioning its scan will produce.
func (s *Store) planLeaves(tree *JoinTree) []plan.Leaf {
	leaves := make([]plan.Leaf, len(tree.Nodes))
	for i, n := range tree.Nodes {
		size, dist := s.nodeEstimate(n)
		leaves[i] = plan.Leaf{
			Label:    n.Label(),
			Vars:     leafVars(n),
			Est:      size,
			Dist:     dist,
			PartCols: leafPartCols(n),
			Anchor:   leafAnchor(n),
		}
	}
	return leaves
}

// leafVars returns a node's output schema in the exact column order
// its scan produces. PT/IPT selects emit the key column first and the
// value variables in pattern order — which differs from Node.Vars()
// pattern order for inverse-PT nodes, whose key is the object.
func leafVars(n *Node) []string {
	switch n.Kind {
	case NodePT:
		return append([]string{n.Key}, nodeValueVars(n, keyOnSubject)...)
	case NodeIPT:
		return append([]string{n.Key}, nodeValueVars(n, keyOnObject)...)
	default:
		return n.Vars()
	}
}

// leafPartCols predicts the partitioning a node's scan output carries:
// PT/IPT selects stay partitioned on their key variable, VP scans on
// their subject variable (the layout VP tables are stored in), and the
// triple-table fallback on its first output variable.
func leafPartCols(n *Node) []string {
	switch n.Kind {
	case NodePT, NodeIPT:
		return []string{n.Key}
	case NodeVP:
		if tp := n.Patterns[0]; tp.S.IsVar() {
			return []string{tp.S.Var}
		}
		return nil
	case NodeTriples:
		if vars := n.Patterns[0].Vars(); len(vars) > 0 {
			return []string{vars[0]}
		}
	}
	return nil
}

// leafAnchor grades a node's constant constraints for the planner's
// start selection, mirroring the §3.3 boosts: bound literals rank
// above bound IRI objects, which rank above unconstrained patterns.
func leafAnchor(n *Node) int {
	anchor := 0
	for _, tp := range n.Patterns {
		switch {
		case tp.HasLiteral():
			return 2
		case tp.HasBoundObject():
			anchor = 1
		}
	}
	return anchor
}

// filterSpecs estimates each FILTER's selectivity from the distinct
// counts of the leaves exposing its variable: equality keeps one of d
// values, inequality keeps the rest, and range comparisons use the
// standard one-third guess.
func filterSpecs(q *sparql.Query, leaves []plan.Leaf) []plan.FilterSpec {
	specs := make([]plan.FilterSpec, 0, len(q.Filters))
	for _, f := range q.Filters {
		d := 0.0
		for _, l := range leaves {
			dv, ok := l.Dist[f.Var]
			if !ok {
				continue
			}
			if d == 0 || dv < d {
				d = dv
			}
		}
		if d < 1 {
			d = 1
		}
		var sel float64
		switch f.Op {
		case sparql.OpEQ:
			sel = 1 / d
		case sparql.OpNE:
			sel = 1 - 1/d
		default:
			sel = 1.0 / 3
		}
		value := f.Value.Value
		if f.Value.IsIRI() {
			value = "<" + value + ">"
		}
		specs = append(specs, plan.FilterSpec{
			Var:         f.Var,
			Selectivity: sel,
			Label:       fmt.Sprintf("?%s%s%s", f.Var, f.Op, value),
		})
	}
	return specs
}

// planCosts bundles the cluster facts physical selection prices with.
func (s *Store) planCosts(opts QueryOptions) plan.Costs {
	threshold := opts.BroadcastThreshold
	if threshold == 0 {
		threshold = engine.DefaultBroadcastThreshold
	}
	if threshold < 0 {
		threshold = 0 // disabled
	}
	return plan.Costs{
		Workers:            s.cluster.Workers(),
		BroadcastThreshold: threshold,
		BytesPerValue:      engine.BytesPerValue,
		SkewSaltFraction:   engine.DefaultSkewSaltFraction,
		Model:              s.cluster.Config().Cost,
	}
}
