package core

import (
	"fmt"
	"strings"

	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/stats"
)

// Compile-time pin of the cross-package join-position encoding: the
// planner's PairPos values must equal the statistics package's JoinPos
// values — the JoinStatsProvider contract passes them as raw uint8.
// Reordering either enum makes one of these constant array indexes
// non-zero and fails the build.
var (
	_ = [1]struct{}{}[uint8(plan.PairSS)-uint8(stats.JoinSS)]
	_ = [1]struct{}{}[uint8(plan.PairSO)-uint8(stats.JoinSO)]
	_ = [1]struct{}{}[uint8(plan.PairOS)-uint8(stats.JoinOS)]
	_ = [1]struct{}{}[uint8(plan.PairOO)-uint8(stats.JoinOO)]
)

// PlannerMode selects how a query's physical plan is produced.
type PlannerMode uint8

// Planner modes.
const (
	// PlannerCost (the default) orders joins by greedy cost-based
	// enumeration over cardinality estimates and selects each join's
	// physical method by pricing broadcast vs. shuffle on estimated
	// input sizes.
	PlannerCost PlannerMode = iota
	// PlannerHeuristic keeps the paper's §3.3 priority ordering and the
	// engine's runtime (threshold-based) join selection — the mode that
	// reproduces the paper's measurements.
	PlannerHeuristic
	// PlannerNaive keeps the query's written pattern order (the A1
	// ablation baseline).
	PlannerNaive
	// PlannerCostLeftDeep is the cost-based planner restricted to
	// left-deep chains — the ablation baseline the bushy planner is
	// measured against.
	PlannerCostLeftDeep
)

// String implements fmt.Stringer.
func (m PlannerMode) String() string {
	switch m {
	case PlannerCost:
		return "cost"
	case PlannerHeuristic:
		return "heuristic"
	case PlannerNaive:
		return "naive"
	case PlannerCostLeftDeep:
		return "cost-leftdeep"
	default:
		return fmt.Sprintf("PlannerMode(%d)", uint8(m))
	}
}

// PlannerModeNames lists the values ParsePlannerMode accepts, in
// documentation order — the single source CLI flags and error messages
// quote, so an invalid -planner value always names every valid one.
func PlannerModeNames() []string {
	return []string{"cost", "cost-leftdeep", "heuristic", "naive"}
}

// ParsePlannerMode maps a CLI flag value to a PlannerMode. Unknown
// values are rejected with an error listing every valid mode.
func ParsePlannerMode(s string) (PlannerMode, error) {
	switch s {
	case "cost", "":
		return PlannerCost, nil
	case "cost-leftdeep":
		return PlannerCostLeftDeep, nil
	case "heuristic":
		return PlannerHeuristic, nil
	case "naive":
		return PlannerNaive, nil
	default:
		return 0, fmt.Errorf("core: unknown planner mode %q (valid modes: %s)",
			s, strings.Join(PlannerModeNames(), ", "))
	}
}

// planMode resolves the options' planner selection, honouring the
// legacy NaiveOrder knob.
func (o QueryOptions) planMode() plan.Mode {
	if o.NaiveOrder || o.Planner == PlannerNaive {
		return plan.ModeNaive
	}
	switch o.Planner {
	case PlannerHeuristic:
		return plan.ModeHeuristic
	case PlannerCostLeftDeep:
		return plan.ModeCostLeftDeep
	default:
		return plan.ModeCost
	}
}

// Plan translates a query and builds its physical plan without
// executing it — the entry point for EXPLAIN and planner benchmarks.
func (s *Store) Plan(q *sparql.Query, opts QueryOptions) (*plan.Plan, error) {
	st := s.curStats()
	tree, err := s.translateWith(st, q, opts.Strategy)
	if err != nil {
		return nil, err
	}
	mode := opts.planMode()
	if mode == plan.ModeNaive {
		naiveOrder(tree, q)
	}
	return s.buildPlan(st, tree, q, mode, opts), nil
}

// buildPlan converts the ordered Join Tree to planner leaves and runs
// the optimizer passes against one statistics snapshot, recording
// estimate provenance for /stats. The snapshot is the caller's: a plan
// is always priced end to end from the same collection whose
// fingerprint keys it in the cache, even when a reload lands while
// planning runs.
func (s *Store) buildPlan(st *stats.Collection, tree *JoinTree, q *sparql.Query, mode plan.Mode, opts QueryOptions) *plan.Plan {
	leaves := s.planLeaves(st, tree)
	specs := filterSpecs(q, leaves)
	pl := plan.Build(leaves, specs, q.Projection(), q.Distinct, mode, s.planCosts(st, opts))
	if pl != nil {
		s.estSources.record(pl)
	}
	return pl
}

// planLeaves describes each Join Tree node to the planner: output
// schema in engine column order, statistics-based cardinality and
// distinct estimates, the triple patterns behind the scan (for sketch
// lookups), and the partitioning its scan will produce.
func (s *Store) planLeaves(st *stats.Collection, tree *JoinTree) []plan.Leaf {
	leaves := make([]plan.Leaf, len(tree.Nodes))
	for i, n := range tree.Nodes {
		size, dist, src := s.leafEstimate(st, n)
		leaves[i] = plan.Leaf{
			Label:     n.Label(),
			Vars:      leafVars(n),
			Est:       size,
			Dist:      dist,
			PartCols:  leafPartCols(n),
			Anchor:    leafAnchor(n),
			Pats:      leafPats(s.dict, n),
			EstSource: src,
			// Only VP scans can redirect to a semi-join reduction: the
			// reduced table is scanned through the same single-predicate
			// path, so the rewrite changes bytes read, nothing else.
			Reducible: n.Kind == NodeVP,
		}
	}
	return leaves
}

// leafEstimate prices one Join Tree node for the planner with the
// documented estimator precedence: characteristic sets for subject
// stars (Property Table nodes), pair sketches for two-pattern groups
// the csets cannot price (inverse-PT object stars, and PT pairs when
// csets are unavailable), and the per-predicate independence estimate
// otherwise. The translator's §3.3 ordering (nodeEstimate) is left
// untouched so the heuristic planner keeps reproducing the paper.
func (s *Store) leafEstimate(st *stats.Collection, n *Node) (float64, map[string]float64, string) {
	size, dist := s.nodeEstimate(st, n)
	if len(n.Patterns) < 2 {
		// Cross-query seeding: a previous execution of the same
		// (predicate, constant) subpattern recorded its exact
		// cardinality — use it over the independence guess, capping the
		// distinct counts (a scan cannot expose more distinct values
		// than rows).
		if rows, ok := s.observedScanEstimate(n); ok {
			for v := range dist {
				minDist(dist, v, float64(rows))
			}
			return float64(rows), dist, plan.EstObserved
		}
		return size, dist, plan.EstIndep
	}
	pids, boundSel, ok := s.groupPreds(st, n)
	if !ok {
		return size, dist, plan.EstIndep
	}
	switch n.Kind {
	case NodePT:
		if subj, rows, ok := st.StarEstimate(pids); ok {
			rows *= boundSel
			minDist(dist, n.Key, subj*boundSel)
			return rows, dist, plan.EstCSet
		}
		if rows, ok := pairLeafEstimate(st, pids, stats.JoinSS, boundSel, dist, n.Key); ok {
			return rows, dist, plan.EstSketch
		}
	case NodeIPT:
		if rows, ok := pairLeafEstimate(st, pids, stats.JoinOO, boundSel, dist, n.Key); ok {
			return rows, dist, plan.EstSketch
		}
	}
	return size, dist, plan.EstIndep
}

// pairLeafEstimate prices a two-pattern group from its pair sketch at
// the given join position, min-updating the key variable's distinct
// count with the sketch's shared-key count. ok is false for groups of
// another size or pairs the sketch cannot answer.
func pairLeafEstimate(st *stats.Collection, pids []rdf.ID, pos stats.JoinPos, boundSel float64, dist map[string]float64, key string) (float64, bool) {
	if len(pids) != 2 {
		return 0, false
	}
	join, keys, ok := st.PairJoin(uint64(pids[0]), uint64(pids[1]), uint8(pos))
	if !ok {
		return 0, false
	}
	minDist(dist, key, keys)
	return join * boundSel, true
}

// minDist lowers dist[v] to d when d is smaller (or v is absent).
func minDist(dist map[string]float64, v string, d float64) {
	if prev, in := dist[v]; !in || d < prev {
		dist[v] = d
	}
}

// groupPreds resolves a PT/IPT node's predicate IDs (pattern order,
// duplicates kept) and the combined selectivity of its bound value
// positions (1/distinct-objects per bound object under the subject
// key, 1/distinct-subjects per bound subject under the object key).
// ok is false when a predicate is variable or unknown, or when value
// variables repeat — shapes whose scan applies equality constraints
// the star statistics cannot see.
func (s *Store) groupPreds(st *stats.Collection, n *Node) (pids []rdf.ID, boundSel float64, ok bool) {
	boundSel = 1
	seenVars := map[string]bool{n.Key: true}
	for _, tp := range n.Patterns {
		if tp.P.IsVar() {
			return nil, 0, false
		}
		pid, found := s.dict.Lookup(tp.P.Term)
		if !found {
			return nil, 0, false
		}
		pids = append(pids, pid)
		ps := st.Predicate(pid)
		value := tp.O
		boundDistinct := float64(ps.DistinctObjects)
		if n.Kind == NodeIPT {
			value = tp.S
			boundDistinct = float64(ps.DistinctSubjects)
		}
		if value.IsVar() {
			if seenVars[value.Var] {
				return nil, 0, false
			}
			seenVars[value.Var] = true
			continue
		}
		if boundDistinct < 1 {
			boundDistinct = 1
		}
		boundSel /= boundDistinct
	}
	return pids, boundSel, true
}

// leafPats describes a node's bound-predicate patterns to the sketch
// estimator: predicate ID plus the variables at each position.
func leafPats(dict *rdf.Dictionary, n *Node) []plan.PatRef {
	var out []plan.PatRef
	for _, tp := range n.Patterns {
		if tp.P.IsVar() {
			continue
		}
		pid, ok := dict.Lookup(tp.P.Term)
		if !ok {
			continue
		}
		pr := plan.PatRef{Pred: uint64(pid)}
		if tp.S.IsVar() {
			pr.SVar = tp.S.Var
		}
		if tp.O.IsVar() {
			pr.OVar = tp.O.Var
		}
		out = append(out, pr)
	}
	return out
}

// leafVars returns a node's output schema in the exact column order
// its scan produces. PT/IPT selects emit the key column first and the
// value variables in pattern order — which differs from Node.Vars()
// pattern order for inverse-PT nodes, whose key is the object.
func leafVars(n *Node) []string {
	switch n.Kind {
	case NodePT:
		return append([]string{n.Key}, nodeValueVars(n, keyOnSubject)...)
	case NodeIPT:
		return append([]string{n.Key}, nodeValueVars(n, keyOnObject)...)
	default:
		return n.Vars()
	}
}

// leafPartCols predicts the partitioning a node's scan output carries:
// PT/IPT selects stay partitioned on their key variable, VP scans on
// their subject variable (the layout VP tables are stored in), and the
// triple-table fallback on its first output variable.
func leafPartCols(n *Node) []string {
	switch n.Kind {
	case NodePT, NodeIPT:
		return []string{n.Key}
	case NodeVP:
		if tp := n.Patterns[0]; tp.S.IsVar() {
			return []string{tp.S.Var}
		}
		return nil
	case NodeTriples:
		if vars := n.Patterns[0].Vars(); len(vars) > 0 {
			return []string{vars[0]}
		}
	}
	return nil
}

// leafAnchor grades a node's constant constraints for the planner's
// start selection, mirroring the §3.3 boosts: bound literals rank
// above bound IRI objects, which rank above unconstrained patterns.
func leafAnchor(n *Node) int {
	anchor := 0
	for _, tp := range n.Patterns {
		switch {
		case tp.HasLiteral():
			return 2
		case tp.HasBoundObject():
			anchor = 1
		}
	}
	return anchor
}

// filterSpecs estimates each FILTER's selectivity from the distinct
// counts of the leaves exposing its variable: equality keeps one of d
// values, inequality keeps the rest, and range comparisons use the
// standard one-third guess.
func filterSpecs(q *sparql.Query, leaves []plan.Leaf) []plan.FilterSpec {
	specs := make([]plan.FilterSpec, 0, len(q.Filters))
	for _, f := range q.Filters {
		d := 0.0
		for _, l := range leaves {
			dv, ok := l.Dist[f.Var]
			if !ok {
				continue
			}
			if d == 0 || dv < d {
				d = dv
			}
		}
		if d < 1 {
			d = 1
		}
		var sel float64
		switch f.Op {
		case sparql.OpEQ:
			sel = 1 / d
		case sparql.OpNE:
			sel = 1 - 1/d
		default:
			sel = 1.0 / 3
		}
		value := f.Value.Value
		if f.Value.IsIRI() {
			value = "<" + value + ">"
		}
		specs = append(specs, plan.FilterSpec{
			Var:         f.Var,
			Selectivity: sel,
			Label:       fmt.Sprintf("?%s%s%s", f.Var, f.Op, value),
		})
	}
	return specs
}

// planCosts bundles the cluster facts physical selection prices with,
// reading join sketches from the caller's statistics snapshot.
func (s *Store) planCosts(st *stats.Collection, opts QueryOptions) plan.Costs {
	threshold := opts.BroadcastThreshold
	if threshold == 0 {
		threshold = engine.DefaultBroadcastThreshold
	}
	if threshold < 0 {
		threshold = 0 // disabled
	}
	c := plan.Costs{
		Workers:            s.cluster.Workers(),
		BroadcastThreshold: threshold,
		BytesPerValue:      engine.BytesPerValue,
		SkewSaltFraction:   engine.DefaultSkewSaltFraction,
		Model:              s.cluster.Config().Cost,
		// The loader statistics implement the sketch lookup; with join
		// statistics disabled every lookup reports no sketch and the
		// estimator falls back to independence everywhere.
		JoinStats: st,
	}
	// The assignment is guarded so a disabled workload leaves the
	// interface nil (a typed-nil provider would look non-nil to the
	// rewrite pre-pass).
	if s.workload != nil {
		c.ExtVP = extvpCosts{s}
	}
	return c
}
