package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

// QueryOptions tunes one query execution.
type QueryOptions struct {
	// Strategy selects the storage structures (default StrategyMixed).
	Strategy Strategy
	// Clock receives the query's virtual time; a fresh clock is created
	// when nil.
	Clock *cluster.Clock
	// BroadcastThreshold overrides the engine's broadcast-join
	// threshold (0 = Spark default, negative = disabled) — the ablation
	// knob for Catalyst's physical join selection.
	BroadcastThreshold int64
	// NaiveOrder disables the statistics-based node ordering and joins
	// nodes in the order the query wrote them — the ablation knob for
	// the paper's §3.3 optimizer.
	NaiveOrder bool
}

// Result is one query's answer plus its execution record.
type Result struct {
	// Vars is the projected variable list.
	Vars []string
	// Rows holds the decoded result rows, one term per projected
	// variable.
	Rows [][]rdf.Term
	// SimTime is the simulated cluster time the query took.
	SimTime time.Duration
	// WallTime is the real execution time of the simulation.
	WallTime time.Duration
	// Tree is the Join Tree the query was executed with.
	Tree *JoinTree
	// Clock exposes the full stage trace.
	Clock *cluster.Clock
}

// SortedRows returns the rows sorted by their rendered terms, for
// deterministic comparisons in tests and examples.
func (r *Result) SortedRows() [][]rdf.Term {
	rows := make([][]rdf.Term, len(r.Rows))
	copy(rows, r.Rows)
	sort.Slice(rows, func(i, j int) bool {
		for k := 0; k < len(rows[i]) && k < len(rows[j]); k++ {
			if c := rows[i][k].Compare(rows[j][k]); c != 0 {
				return c < 0
			}
		}
		return len(rows[i]) < len(rows[j])
	})
	return rows
}

// Query translates and executes a SPARQL query against the store.
func (s *Store) Query(q *sparql.Query, opts QueryOptions) (*Result, error) {
	start := time.Now()
	clock := opts.Clock
	if clock == nil {
		clock = cluster.NewClock()
	}
	tree, err := s.Translate(q, opts.Strategy)
	if err != nil {
		return nil, err
	}
	if opts.NaiveOrder {
		naiveOrder(tree, q)
	}

	e := engine.NewExec(s.cluster, clock)
	e.BroadcastThreshold = opts.BroadcastThreshold

	filters, err := s.compileFilters(q)
	if err != nil {
		return nil, err
	}

	// Execute nodes and join left-deep in tree order (bottom-up in the
	// paper's terms: leaves first, root last).
	var current *engine.Relation
	for _, node := range tree.Nodes {
		rel, err := s.execNode(e, node)
		if err != nil {
			return nil, fmt.Errorf("core: executing %s: %w", node.Label(), err)
		}
		rel, err = applyFilters(e, rel, filters)
		if err != nil {
			return nil, err
		}
		if current == nil {
			current = rel
			continue
		}
		current, err = e.Join(current, rel, node.Label())
		if err != nil {
			return nil, fmt.Errorf("core: joining %s: %w", node.Label(), err)
		}
	}
	if current == nil {
		return nil, fmt.Errorf("core: query has no patterns")
	}

	proj := q.Projection()
	current, err = e.Project(current, proj)
	if err != nil {
		return nil, err
	}
	if q.Distinct {
		current, err = e.Distinct(current)
		if err != nil {
			return nil, err
		}
	}
	rows, err := e.Limit(current, q.Limit, q.Offset)
	if err != nil {
		return nil, err
	}

	decoded := make([][]rdf.Term, len(rows))
	for i, r := range rows {
		terms := make([]rdf.Term, len(r))
		for j, id := range r {
			terms[j] = s.dict.Term(id)
		}
		decoded[i] = terms
	}
	return &Result{
		Vars:     proj,
		Rows:     decoded,
		SimTime:  clock.Elapsed(),
		WallTime: time.Since(start),
		Tree:     tree,
		Clock:    clock,
	}, nil
}

// naiveOrder rewrites the tree's execution order to follow the query's
// written pattern order (ablation A1).
func naiveOrder(tree *JoinTree, q *sparql.Query) {
	pos := func(n *Node) int {
		best := len(q.Patterns)
		for _, tp := range n.Patterns {
			for i, qp := range q.Patterns {
				if qp == tp && i < best {
					best = i
				}
			}
		}
		return best
	}
	sort.SliceStable(tree.Nodes, func(i, j int) bool { return pos(tree.Nodes[i]) < pos(tree.Nodes[j]) })
}

// compiledFilter is one FILTER constraint ready to apply to ID rows.
type compiledFilter struct {
	v    string
	pred func(rdf.ID) bool
}

// compileFilters turns the query's FILTER list into ID predicates.
func (s *Store) compileFilters(q *sparql.Query) ([]compiledFilter, error) {
	out := make([]compiledFilter, 0, len(q.Filters))
	for _, f := range q.Filters {
		op, err := compareFn(f.Op)
		if err != nil {
			return nil, err
		}
		value := f.Value
		out = append(out, compiledFilter{
			v: f.Var,
			pred: func(id rdf.ID) bool {
				return engine.CompareIDs(s.dict, id, op, value)
			},
		})
	}
	return out, nil
}

// compareFn maps a comparison operator to a predicate over Compare's
// three-way result.
func compareFn(op sparql.CompareOp) (func(int) bool, error) {
	switch op {
	case sparql.OpEQ:
		return func(c int) bool { return c == 0 }, nil
	case sparql.OpNE:
		return func(c int) bool { return c != 0 }, nil
	case sparql.OpLT:
		return func(c int) bool { return c < 0 }, nil
	case sparql.OpLE:
		return func(c int) bool { return c <= 0 }, nil
	case sparql.OpGT:
		return func(c int) bool { return c > 0 }, nil
	case sparql.OpGE:
		return func(c int) bool { return c >= 0 }, nil
	default:
		return nil, fmt.Errorf("core: unsupported filter operator %v", op)
	}
}

// applyFilters pushes every filter whose variable the relation exposes
// down onto it. Re-applying a filter at multiple nodes is harmless
// (selections are idempotent) and maximizes early pruning.
func applyFilters(e *engine.Exec, rel *engine.Relation, filters []compiledFilter) (*engine.Relation, error) {
	for _, f := range filters {
		idx := rel.Schema().Index(f.v)
		if idx < 0 {
			continue
		}
		var err error
		i, pred := idx, f.pred
		rel, err = e.Filter(rel, "?"+f.v, func(r engine.Row) bool { return pred(r[i]) })
		if err != nil {
			return nil, err
		}
	}
	return rel, nil
}

// execNode evaluates one Join Tree node into a relation whose schema is
// the node's variable list.
func (s *Store) execNode(e *engine.Exec, n *Node) (*engine.Relation, error) {
	switch n.Kind {
	case NodeVP:
		return s.execVPNode(e, n.Patterns[0])
	case NodePT:
		return s.execPTNode(e, s.pt, n)
	case NodeIPT:
		if s.ipt == nil {
			return nil, fmt.Errorf("core: inverse property table not loaded")
		}
		return s.execPTNode(e, s.ipt, n)
	case NodeTriples:
		return s.execTriplesNode(e, n.Patterns[0])
	default:
		return nil, fmt.Errorf("core: unknown node kind %v", n.Kind)
	}
}

// emptyRelation builds a zero-row relation with the given variables.
func (s *Store) emptyRelation(vars []string) *engine.Relation {
	return engine.NewRelation(engine.Schema(vars), make([][]engine.Row, s.parts), "")
}

// execVPNode answers one bound-predicate pattern from its VP table:
// scan, filter bound positions, project and rename to the pattern's
// variables. Subject-keyed outputs stay subject-partitioned, so later
// subject joins avoid the shuffle.
func (s *Store) execVPNode(e *engine.Exec, tp sparql.TriplePattern) (*engine.Relation, error) {
	outVars := tp.Vars()
	pid, ok := s.dict.Lookup(tp.P.Term)
	if !ok {
		return s.emptyRelation(outVars), nil
	}
	table := s.vp[pid]
	if table == nil {
		return s.emptyRelation(outVars), nil
	}
	rel, err := e.Scan(table.Rel, "VP "+localName(tp.P.Term.Value), table.FileBytes)
	if err != nil {
		return nil, err
	}

	// Bound-position filters.
	if !tp.S.IsVar() {
		sid, ok := s.dict.Lookup(tp.S.Term)
		if !ok {
			return s.emptyRelation(outVars), nil
		}
		rel, err = e.Filter(rel, "s="+localName(tp.S.Term.Value), func(r engine.Row) bool { return r[0] == sid })
		if err != nil {
			return nil, err
		}
	}
	if !tp.O.IsVar() {
		oid, ok := s.dict.Lookup(tp.O.Term)
		if !ok {
			return s.emptyRelation(outVars), nil
		}
		rel, err = e.Filter(rel, "o=const", func(r engine.Row) bool { return r[1] == oid })
		if err != nil {
			return nil, err
		}
	}

	// Shape the output columns.
	switch {
	case tp.S.IsVar() && tp.O.IsVar() && tp.S.Var == tp.O.Var:
		rel, err = e.Filter(rel, "s=o", func(r engine.Row) bool { return r[0] == r[1] })
		if err != nil {
			return nil, err
		}
		rel, err = e.Project(rel, []string{"s"})
		if err != nil {
			return nil, err
		}
		return e.Rename(rel, []string{tp.S.Var})
	case tp.S.IsVar() && tp.O.IsVar():
		return e.Rename(rel, []string{tp.S.Var, tp.O.Var})
	case tp.S.IsVar():
		rel, err = e.Project(rel, []string{"s"})
		if err != nil {
			return nil, err
		}
		return e.Rename(rel, []string{tp.S.Var})
	case tp.O.IsVar():
		rel, err = e.Project(rel, []string{"o"})
		if err != nil {
			return nil, err
		}
		return e.Rename(rel, []string{tp.O.Var})
	default:
		// Fully bound: an existence test. A single empty row keeps join
		// semantics (cartesian with one row is the identity).
		return s.existenceRelation(rel), nil
	}
}

// existenceRelation reduces a relation to zero columns: one empty row if
// any row matched, none otherwise.
func (s *Store) existenceRelation(rel *engine.Relation) *engine.Relation {
	parts := make([][]engine.Row, 1)
	if rel.NumRows() > 0 {
		parts[0] = []engine.Row{{}}
	}
	return engine.NewRelation(engine.Schema{}, parts, "")
}

// execTriplesNode answers a variable-predicate pattern from the raw
// triple data — the fallback path outside the WatDiv workload.
func (s *Store) execTriplesNode(e *engine.Exec, tp sparql.TriplePattern) (*engine.Relation, error) {
	outVars := tp.Vars()
	// Resolve bound positions.
	var sid, oid rdf.ID
	if !tp.S.IsVar() {
		id, ok := s.dict.Lookup(tp.S.Term)
		if !ok {
			return s.emptyRelation(outVars), nil
		}
		sid = id
	}
	if !tp.O.IsVar() {
		id, ok := s.dict.Lookup(tp.O.Term)
		if !ok {
			return s.emptyRelation(outVars), nil
		}
		oid = id
	}
	var rows []engine.Row
	for _, t := range s.triples {
		if sid != rdf.NullID && t.S != sid {
			continue
		}
		if oid != rdf.NullID && t.O != oid {
			continue
		}
		row := make(engine.Row, 0, len(outVars))
		vals := map[string]rdf.ID{}
		okRow := true
		for _, pos := range []struct {
			pt  sparql.PatternTerm
			val rdf.ID
		}{{tp.S, t.S}, {tp.P, t.P}, {tp.O, t.O}} {
			if !pos.pt.IsVar() {
				continue
			}
			if prev, seen := vals[pos.pt.Var]; seen {
				if prev != pos.val {
					okRow = false
					break
				}
				continue
			}
			vals[pos.pt.Var] = pos.val
			row = append(row, pos.val)
		}
		if okRow {
			rows = append(rows, row)
		}
	}
	// Charge a full-dataset scan (sum of all VP files).
	var totalBytes int64
	for _, t := range s.vp {
		totalBytes += t.FileBytes
	}
	rel, err := engine.Partition(engine.Schema(outVars), rows, outVars[0], s.parts)
	if err != nil {
		return nil, err
	}
	return e.Scan(rel, "triples ?"+tp.P.Var, totalBytes)
}
