package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

// QueryOptions tunes one query execution.
type QueryOptions struct {
	// Strategy selects the storage structures (default StrategyMixed).
	Strategy Strategy
	// Planner selects the planning mode (default PlannerCost). The
	// heuristic and naive modes keep the paper's §3.3 ordering and the
	// written-order ablation reproducible.
	Planner PlannerMode
	// Clock receives the query's virtual time; a fresh clock is created
	// when nil.
	Clock *cluster.Clock
	// BroadcastThreshold overrides the broadcast-join threshold
	// (0 = Spark default, negative = disabled) — the ablation knob for
	// Catalyst's physical join selection. The heuristic and naive
	// planners apply it as the runtime build-side cap; the cost-based
	// planner treats it as a broadcast on/off switch and replaces the
	// size cap with CostModel pricing, so priced broadcasts may exceed
	// it.
	BroadcastThreshold int64
	// NaiveOrder joins nodes in the order the query wrote them — the
	// legacy spelling of Planner: PlannerNaive (ablation A1).
	NaiveOrder bool
	// Parallelism bounds the scheduler's worker pool: how many plan
	// operators may execute concurrently (0 = GOMAXPROCS). Independent
	// subtrees of the plan run in parallel up to this bound.
	Parallelism int
	// NoPlanCache bypasses the store's plan cache for this query: the
	// plan is built from scratch and not inserted.
	NoPlanCache bool
	// ReplanThreshold is the adaptive re-planning trigger: when an
	// executed operator's observed cardinality misses its estimate by
	// more than this factor, the scheduler pauses the unexecuted
	// remainder, re-plans it over the materialized intermediates, and
	// splices the corrected remainder in when its priced saving beats
	// the re-planning charge. 0 uses DefaultReplanThreshold; negative
	// disables re-planning (the static ablation baseline). Only the
	// cost-based planner modes re-plan — the heuristic and naive modes
	// reproduce the paper's static behaviour exactly.
	ReplanThreshold float64
	// Faults injects a deterministic fault schedule for this query,
	// overriding the cluster-wide plan (cluster.Config.Faults). Nil
	// inherits the cluster's; a nil or inactive resolved plan keeps
	// execution on the unchanged fault-free hot path (no checksums, no
	// attempt bookkeeping). Fault options never affect planning, so
	// cached plans are shared across fault settings.
	Faults *cluster.FaultPlan
	// MaxTaskAttempts bounds execution attempts per task under an
	// active fault plan (0 = DefaultMaxTaskAttempts); exhausting it
	// aborts the query with a *TaskFailedError.
	MaxTaskAttempts int
	// RetryBackoff is the base virtual backoff charged between a failed
	// attempt and its retry, doubling per failure up to MaxRetryBackoff
	// (0 = DefaultRetryBackoff).
	RetryBackoff time.Duration
	// SpeculativeFactor is the straggler-detection multiple: an attempt
	// running past this multiple of the median sibling time gets a
	// speculative duplicate, first finisher wins (0 =
	// DefaultSpeculativeFactor; negative disables speculation).
	SpeculativeFactor float64
	// Streaming routes the query through the morsel-driven pipeline
	// executor: operators fuse into chunk-at-a-time pipelines, SimTime
	// comes from list-scheduling priced morsels onto the simulated
	// workers, and the result carries first-row latency and the peak
	// intermediate footprint. Queries the streaming engine does not
	// take (LIMIT/OFFSET, adaptive Bound plans) fall back to the
	// materialized scheduler transparently; both modes produce
	// identical SortedRows.
	Streaming bool
	// ChunkSize is the streaming executor's rows-per-chunk (and morsel
	// batch) granularity (0 = DefaultChunkSize).
	ChunkSize int
	// Dist routes scan and exchange kernels to shard processes through
	// a per-query DistSession (coordinator mode). Planning, shuffle
	// routing and stage pricing stay local and unchanged, so results
	// and SimTime match single-process execution; streaming, fault
	// injection and adaptive re-planning are forced off for the query,
	// and ExtVP rewrites are not taken.
	Dist DistRunner
}

// DefaultReplanThreshold is the estimation-error factor that triggers
// adaptive re-planning when QueryOptions.ReplanThreshold is zero. The
// C-family triangle joins miss by ~40x under the independence
// assumption while well-estimated operators stay within a factor of a
// few, so 8x separates the two populations cleanly.
const DefaultReplanThreshold = 8.0

// replanThreshold resolves the options' re-planning trigger for the
// given planner mode.
func (o QueryOptions) replanThreshold(mode plan.Mode) float64 {
	if o.ReplanThreshold < 0 {
		return 0
	}
	if mode != plan.ModeCost && mode != plan.ModeCostLeftDeep {
		return 0
	}
	if o.ReplanThreshold == 0 {
		return DefaultReplanThreshold
	}
	return o.ReplanThreshold
}

// Result is one query's answer plus its execution record.
type Result struct {
	// Vars is the projected variable list.
	Vars []string
	// Rows holds the decoded result rows, one term per projected
	// variable.
	Rows [][]rdf.Term
	// SimTime is the simulated cluster time the query took.
	SimTime time.Duration
	// WallTime is the real execution time of the simulation.
	WallTime time.Duration
	// Tree is the Join Tree the query was executed with, in plan
	// execution order.
	Tree *JoinTree
	// Plan is the physical plan the query executed, with per-node
	// estimated and actual cardinalities filled in. When adaptive
	// re-planning fired, this is the corrected plan the query actually
	// ran — executed fragments grafted under the re-planned remainder.
	Plan *plan.Plan
	// Clock exposes the full stage trace.
	Clock *cluster.Clock
	// Replans records the adaptive re-planning decisions the execution
	// evaluated, in round order (empty for a static run).
	Replans []ReplanEvent
	// CacheFeedback reports that the plan came from a feedback-cache
	// entry: a corrected plan written back by a previous execution's
	// re-plan, so this execution never repeats the original mistake.
	CacheFeedback bool
	// Resilience is the query's recovery record under fault injection:
	// attempts, retries, speculation, checksum failures and the priced
	// recovery time SimTime absorbed. Zero for fault-free executions.
	Resilience ResilienceStats
	// Streamed reports that the morsel-driven streaming executor ran
	// the query (false when QueryOptions.Streaming was off, or the
	// query fell back to the materialized scheduler).
	Streamed bool
	// FirstRow is the simulated latency until the first result morsel
	// finished delivering to the driver — strictly earlier than
	// SimTime whenever the query emits more than one result morsel.
	// Zero for materialized executions and empty results.
	FirstRow time.Duration
	// PeakMemBytes is the simulated peak intermediate memory: for a
	// streamed query, hash-join build sides + the distinct set + the
	// in-flight chunk budget; for a materialized query, the peak of
	// live intermediate relations over the virtual timeline.
	PeakMemBytes int64
	// Ordered reports that Rows is already in the query's ORDER BY
	// order — consumers must present Rows as-is instead of re-sorting
	// for display.
	Ordered bool
	// StreamingDowngraded reports that QueryOptions.Streaming was
	// requested but the sharded coordinator path forced it off — the
	// distributed kernels run only under the materialized scheduler.
	StreamingDowngraded bool
}

// ReplanSummary renders the adaptive re-planning record for EXPLAIN
// output: the plan's provenance when it came from the feedback cache,
// and one block per evaluated re-plan with the trigger node, the error
// ratio, the decision, and the old vs new remainder. It returns ""
// when nothing adaptive happened.
func (r *Result) ReplanSummary() string {
	if len(r.Replans) == 0 && !r.CacheFeedback {
		return ""
	}
	var sb strings.Builder
	if r.CacheFeedback {
		sb.WriteString("plan source: feedback cache (corrected by a previous execution's re-plan)\n")
	}
	for _, ev := range r.Replans {
		verdict := "kept static remainder (saving under re-plan charge)"
		if ev.Adopted {
			verdict = "adopted corrected remainder"
		}
		fmt.Fprintf(&sb, "re-plan round %d: trigger %s est=%.4g actual=%d (%.1fx error): %s, remainder %v -> %v\n",
			ev.Round, ev.Trigger, ev.Est, ev.Actual, ev.Ratio, verdict,
			ev.OldCrit.Round(time.Microsecond), ev.NewCrit.Round(time.Microsecond))
		if ev.Adopted {
			sb.WriteString(indentBlock("  old remainder: ", ev.OldRemainder))
			sb.WriteString(indentBlock("  new remainder: ", ev.NewRemainder))
		}
	}
	return sb.String()
}

// indentBlock renders a multi-line plan under a header, indented.
func indentBlock(header, block string) string {
	var sb strings.Builder
	sb.WriteString(header)
	sb.WriteByte('\n')
	for _, line := range strings.Split(strings.TrimRight(block, "\n"), "\n") {
		sb.WriteString("    ")
		sb.WriteString(line)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// SortedRows returns the rows sorted by their rendered terms, for
// deterministic comparisons in tests and examples.
func (r *Result) SortedRows() [][]rdf.Term {
	rows := make([][]rdf.Term, len(r.Rows))
	copy(rows, r.Rows)
	sort.Slice(rows, func(i, j int) bool {
		for k := 0; k < len(rows[i]) && k < len(rows[j]); k++ {
			if c := rows[i][k].Compare(rows[j][k]); c != 0 {
				return c < 0
			}
		}
		return len(rows[i]) < len(rows[j])
	})
	return rows
}

// Query plans and executes a SPARQL query against the store with a
// background context; see QueryContext.
func (s *Store) Query(q *sparql.Query, opts QueryOptions) (*Result, error) {
	return s.QueryContext(context.Background(), q, opts)
}

// QueryContext plans and executes a SPARQL query against the store.
// Planning first consults the plan cache (keyed on the normalized BGP,
// the options, and the loader-statistics fingerprint); on a miss the
// Join Tree is translated from the BGP (paper §3.2) and the planner
// builds a physical plan with estimated cardinalities. Execution runs
// the plan as a task DAG on a bounded worker pool: independent
// subtrees (bushy arms, sibling scans) execute concurrently, each
// operator's actual output cardinality is recorded into a
// per-execution observation, and the simulated time is the critical
// path through the DAG.
//
// Execution is adaptive: a join whose input's observed cardinality
// missed its estimate by more than QueryOptions.ReplanThreshold does
// not run — the unexecuted remainder is re-planned over the
// materialized intermediates (with exact rebased statistics) and the
// corrected remainder is spliced in when its priced saving beats the
// re-planning charge. A query that re-planned writes the corrected
// plan back to the plan cache (keyed identically, estimates rebased to
// the observed cardinalities), so the next execution of the same query
// skips both the mistake and the re-plan. Only fully executed queries
// write back — a cancelled or failed run never poisons the cache.
//
// ctx cancels in-flight execution at task granularity: when the
// deadline passes, no further plan operators start and QueryContext
// returns a *CancelError wrapping the context error.
//
// QueryContext is safe for concurrent callers — cached plans are
// shared read-only, and all execution state is per-call.
func (s *Store) QueryContext(ctx context.Context, q *sparql.Query, opts QueryOptions) (*Result, error) {
	start := time.Now()
	clock := opts.Clock
	if clock == nil {
		clock = cluster.NewClock()
	}
	// Coordinator mode: open the per-query shard session and force the
	// execution paths the distributed kernels do not take — streaming,
	// fault injection and adaptive re-planning — off. Planning is
	// unaffected (the session only executes kernels).
	var distSess DistSession
	streamingDowngraded := false
	if opts.Dist != nil {
		sess, err := opts.Dist.Session(q)
		if err != nil {
			return nil, err
		}
		distSess = sess
		defer distSess.Close()
		// A streaming request against the coordinator is a downgrade,
		// not a silent no-op: the flag surfaces in the result (and the
		// HTTP stats) so callers see which executor actually ran.
		streamingDowngraded = opts.Streaming
		opts.Streaming = false
		opts.Faults = nil
		opts.ReplanThreshold = -1
	}
	// The adaptive re-planner reasons over a single BGP's join/scan
	// remainder; the extended operators (LeftJoin, Union, TopK,
	// Aggregate) execute statically. Forced off before planning so the
	// cache key's resolved threshold matches the execution.
	if q.Extended() {
		opts.ReplanThreshold = -1
	}
	mode := opts.planMode()
	// One statistics snapshot serves the whole query: the cache key's
	// fingerprint, leaf estimation, plan pricing and the re-planner's
	// sketch lookups all read the same collection, so a reload landing
	// mid-query can never produce a plan priced from a mixture of old
	// and new statistics (or cache one under the wrong fingerprint).
	snap := s.statsSnap.Load()
	entry, key, cacheable, err := s.planEntry(snap, q, mode, opts)
	if err != nil {
		return nil, err
	}
	pl := entry.plan

	filters, err := s.compileFilters(q)
	if err != nil {
		return nil, err
	}

	// The plan may have reordered (or bushed) the leaves; present the
	// Join Tree in scan execution order, in a fresh slice so the cached
	// node list is never touched.
	scans := pl.Scans()
	ordered := make([]*Node, 0, len(scans))
	for _, sc := range scans {
		ordered = append(ordered, entry.nodes[sc.Leaf])
	}
	tree := &JoinTree{Nodes: ordered}

	// Resolve the fault plan: per-query override first, then the
	// cluster-wide schedule; an inactive plan keeps the fault-free hot
	// path (faults stays nil, so no checksum or attempt bookkeeping).
	faults := opts.Faults
	if faults == nil {
		faults = s.cluster.Config().Faults
	}
	if !faults.Active() || distSess != nil {
		faults = nil
	}
	var faultSalt uint64
	if faults != nil {
		faultSalt = queryFaultSalt(q)
	}

	// Streaming dispatch: the morsel-driven executor takes every plan
	// it can run — including the extended operators and LIMIT/OFFSET,
	// which runs as a bounded top-K sink. handled=false means no work
	// was done (adaptive Bound plans fall back) — the materialized
	// path below executes as if Streaming were off.
	if opts.Streaming {
		res, handled, err := s.queryStreaming(ctx, q, opts, clock, entry, tree, filters, faults, faultSalt, start)
		if err != nil {
			return nil, err
		}
		if handled {
			s.mineWorkload(res.Plan, entry.nodes)
			return res, nil
		}
	}

	sched := &scheduler{
		store:           s,
		nodes:           entry.nodes,
		dist:            distSess,
		filters:         filters,
		opts:            opts,
		ctx:             ctx,
		startCost:       s.cluster.Config().Cost.SQLPlanning,
		replanThreshold: opts.replanThreshold(mode),
		filterSpecs:     filterSpecs(q, pl.Leaves),
		projection:      q.Projection(),
		distinct:        q.Distinct,
		costs:           s.planCosts(snap.col, opts),
		replanCharge:    s.cluster.Config().Cost.SQLPlanning,
		faults:          faults,
		faultSalt:       faultSalt,
		maxAttempts:     opts.maxTaskAttempts(),
		retryBackoff:    opts.retryBackoffBase(),
		specFactor:      opts.speculativeFactor(),
	}
	rootTask, err := sched.execute(pl)
	if sched.faults != nil {
		// Recovery counters aggregate on the store even when the query
		// aborted — failed recovery is exactly what /stats should show.
		s.resilience.absorb(&sched.res)
	}
	if err != nil {
		return nil, err
	}

	// Epilogue: collect the root relation, priced on its own clock and
	// sequenced after the root task on the virtual timeline. An
	// extended query's plan already applied LIMIT/OFFSET (and ordering)
	// through its TopK operator, so the collect must preserve partition
	// order as-is; a plain BGP query has no limit to push (LIMIT makes
	// a query extended) and collects everything.
	epiClock := cluster.NewClock()
	e := engine.NewExec(s.cluster, epiClock)
	e.StartCost = 0
	e.BroadcastThreshold = opts.BroadcastThreshold
	var rows []engine.Row
	if q.Extended() {
		rows, err = e.Collect(rootTask.rel)
	} else {
		rows, err = e.Limit(rootTask.rel, q.Limit, q.Offset)
	}
	if err != nil {
		return nil, err
	}

	// Assemble the query's trace on a private clock — the stages in
	// deterministic plan order — then publish it into the result clock
	// in one atomic step, advancing by the DAG's critical path rather
	// than the stage sum (stages of independent subtrees overlap), so
	// a caller-shared opts.Clock accumulates correctly under
	// concurrent queries.
	trace := cluster.NewClock()
	trace.Charge("query planning", sched.startCost)
	sched.appendTrace(trace)
	trace.Absorb(epiClock.Stages())
	simTime := rootTask.done + epiClock.Elapsed()
	clock.MergeTrace(trace.Stages(), simTime)

	// The executed-plan view: the static plan stamped with actuals, or
	// the corrected grafted plan when re-planning fired.
	var executed *plan.Plan
	if len(sched.rounds) == 1 {
		executed = pl.Stamp(sched.rounds[0].obs)
	} else {
		executed = sched.executedPlan()
	}
	if distSess != nil {
		// EXPLAIN view: measured vs priced bytes per exchange node.
		annotateDistPlan(executed, distSess.Records())
	}

	// Feedback write-back: a fully executed query that evaluated a
	// re-plan stores the corrected plan (estimates rebased to observed
	// cardinalities) under the same key, turning the cache from a
	// memoizer into a feedback store — the next execution neither
	// repeats the estimation mistake nor re-pays the re-plan.
	if cacheable && len(sched.events) > 0 {
		s.planCache.put(key, &cachedPlan{nodes: entry.nodes, plan: executed.Rebase(), corrected: true})
	}
	s.adaptive.record(sched.events)

	// Workload mining reads the first round's stamped plan, never the
	// grafted executed view: grafted fragments carry Leaf indexes into
	// other rounds' node lists, and the first round observed every
	// operator that ran before any re-plan fired.
	if s.workload != nil {
		mined := executed
		if len(sched.rounds) != 1 {
			mined = pl.Stamp(sched.rounds[0].obs)
		}
		s.mineWorkload(mined, entry.nodes)
	}

	countCols := pl.Root.CountCols
	decoded := make([][]rdf.Term, len(rows))
	for i, r := range rows {
		terms := make([]rdf.Term, len(r))
		for j, id := range r {
			terms[j] = s.decodeCell(id, j < len(countCols) && countCols[j])
		}
		decoded[i] = terms
	}
	return &Result{
		Vars:                q.Projection(),
		Rows:                decoded,
		SimTime:             simTime,
		WallTime:            time.Since(start),
		Tree:                tree,
		Plan:                executed,
		Clock:               clock,
		Replans:             sched.events,
		CacheFeedback:       entry.corrected,
		Resilience:          sched.res.stats(),
		PeakMemBytes:        materializedPeakBytes(sched, simTime),
		Ordered:             len(q.Order) > 0,
		StreamingDowngraded: streamingDowngraded,
	}, nil
}

// planEntry resolves the (translate + plan) pipeline through the plan
// cache: a hit returns the shared immutable entry; a miss translates,
// plans, inserts and returns. The returned key and cacheable flag let
// the caller write a corrected plan back after an adaptive run.
func (s *Store) planEntry(snap *statsSnapshot, q *sparql.Query, mode plan.Mode, opts QueryOptions) (entry *cachedPlan, key string, cacheable bool, err error) {
	cacheable = !opts.NoPlanCache && s.planCache != nil
	if cacheable {
		key = planCacheKey(q, mode, opts, snap.fp, s.workloadEpoch())
		if e, ok := s.planCache.get(key); ok {
			return e, key, cacheable, nil
		}
	}
	if q.Extended() {
		entry, err = s.planExtended(snap, q, mode, opts)
		if err != nil {
			return nil, "", false, err
		}
	} else {
		tree, err := s.translateWith(snap.col, q, opts.Strategy)
		if err != nil {
			return nil, "", false, err
		}
		if mode == plan.ModeNaive {
			naiveOrder(tree, q)
		}
		pl := s.buildPlan(snap.col, tree, q, mode, opts)
		if pl == nil {
			return nil, "", false, fmt.Errorf("core: query has no patterns")
		}
		entry = &cachedPlan{nodes: tree.Nodes, plan: pl}
	}
	if cacheable {
		s.planCache.put(key, entry)
	}
	return entry, key, cacheable, nil
}

// PlanCacheMetrics snapshots the store's plan-cache counters.
func (s *Store) PlanCacheMetrics() CacheMetrics {
	if s.planCache == nil {
		return CacheMetrics{}
	}
	return s.planCache.metrics()
}

// joinStrategy maps a planned join method to the engine request. A
// planned broadcast is forced: the planner priced it cheaper than
// shuffling even when the build side exceeds the global threshold.
// Planned shuffle and co-partitioned joins keep the engine's runtime
// rule, which downgrades to a broadcast when an intermediate result
// turns out tiny at execution time (the adaptive re-optimization Spark
// 3 calls AQE) — the planner's static estimate can only be refined,
// never worsened, by that check.
func joinStrategy(m plan.JoinMethod) engine.JoinStrategy {
	switch m {
	case plan.MethodBroadcast:
		return engine.StrategyBroadcast
	default:
		return engine.StrategyAuto
	}
}

// pickFilters selects the compiled filters at the given indexes.
func pickFilters(filters []compiledFilter, idx []int) []compiledFilter {
	if len(idx) == 0 {
		return nil
	}
	out := make([]compiledFilter, 0, len(idx))
	for _, i := range idx {
		out = append(out, filters[i])
	}
	return out
}

// naiveOrder rewrites the tree's execution order to follow the query's
// written pattern order (ablation A1).
func naiveOrder(tree *JoinTree, q *sparql.Query) {
	pos := func(n *Node) int {
		best := len(q.Patterns)
		for _, tp := range n.Patterns {
			for i, qp := range q.Patterns {
				if qp == tp && i < best {
					best = i
				}
			}
		}
		return best
	}
	sort.SliceStable(tree.Nodes, func(i, j int) bool { return pos(tree.Nodes[i]) < pos(tree.Nodes[j]) })
}

// compiledFilter is one FILTER constraint ready to apply to ID rows.
type compiledFilter struct {
	v    string
	pred func(rdf.ID) bool
}

// compileFilters turns the query's FILTER list into ID predicates, in
// the order plan filter indexes point into: q.Filters for a plain BGP
// query, the concatenated per-group list for an extended one.
func (s *Store) compileFilters(q *sparql.Query) ([]compiledFilter, error) {
	if q.Extended() {
		return s.compileFilterList(extendedFilterList(q))
	}
	return s.compileFilterList(q.Filters)
}

// compileFilterList compiles an explicit FILTER list — the shard
// server compiles the coordinator-shipped pushed filters through the
// same path, so both sides test rows identically (the dictionaries are
// equal by deterministic loading).
func (s *Store) compileFilterList(filters []sparql.Filter) ([]compiledFilter, error) {
	out := make([]compiledFilter, 0, len(filters))
	for _, f := range filters {
		op, err := compareFn(f.Op)
		if err != nil {
			return nil, err
		}
		value := f.Value
		out = append(out, compiledFilter{
			v: f.Var,
			pred: func(id rdf.ID) bool {
				return engine.CompareIDs(s.dict, id, op, value)
			},
		})
	}
	return out, nil
}

// compareFn maps a comparison operator to a predicate over Compare's
// three-way result.
func compareFn(op sparql.CompareOp) (func(int) bool, error) {
	switch op {
	case sparql.OpEQ:
		return func(c int) bool { return c == 0 }, nil
	case sparql.OpNE:
		return func(c int) bool { return c != 0 }, nil
	case sparql.OpLT:
		return func(c int) bool { return c < 0 }, nil
	case sparql.OpLE:
		return func(c int) bool { return c <= 0 }, nil
	case sparql.OpGT:
		return func(c int) bool { return c > 0 }, nil
	case sparql.OpGE:
		return func(c int) bool { return c >= 0 }, nil
	default:
		return nil, fmt.Errorf("core: unsupported filter operator %v", op)
	}
}

// applyResidualFilters applies filters the planner could not push into
// a scan (defensive: validated queries always expose every filtered
// variable at some leaf).
func applyResidualFilters(e *engine.Exec, rel *engine.Relation, filters []compiledFilter) (*engine.Relation, error) {
	for _, f := range filters {
		idx := rel.Schema().Index(f.v)
		if idx < 0 {
			return nil, fmt.Errorf("core: residual filter variable ?%s not in schema %v", f.v, rel.Schema())
		}
		var err error
		i, pred := idx, f.pred
		rel, err = e.Filter(rel, "?"+f.v, func(r engine.Row) bool { return pred(r[i]) })
		if err != nil {
			return nil, err
		}
	}
	return rel, nil
}

// rowPredicate compiles pushed filters into one predicate over rows of
// the given schema, returning nil when there is nothing to test.
// Filters whose variable the schema lacks are reported as an error —
// the planner only pushes filters to scans exposing their variable.
func rowPredicate(schema []string, pushed []compiledFilter) (func(engine.Row) bool, error) {
	if len(pushed) == 0 {
		return nil, nil
	}
	idx := make([]int, len(pushed))
	for i, f := range pushed {
		idx[i] = -1
		for j, col := range schema {
			if col == f.v {
				idx[i] = j
				break
			}
		}
		if idx[i] < 0 {
			return nil, fmt.Errorf("core: pushed filter variable ?%s not in scan schema %v", f.v, schema)
		}
	}
	preds := pushed
	return func(r engine.Row) bool {
		for i, f := range preds {
			if !f.pred(r[idx[i]]) {
				return false
			}
		}
		return true
	}, nil
}

// execNode evaluates one Join Tree node into a relation whose schema is
// the node's variable list, applying any pushed-down filters during the
// scan itself.
func (s *Store) execNode(e *engine.Exec, n *Node, pushed []compiledFilter) (*engine.Relation, error) {
	switch n.Kind {
	case NodeVP:
		return s.execVPNode(e, n.Patterns[0], pushed)
	case NodePT:
		return s.execPTNode(e, s.pt, n, pushed)
	case NodeIPT:
		if s.ipt == nil {
			return nil, fmt.Errorf("core: inverse property table not loaded")
		}
		return s.execPTNode(e, s.ipt, n, pushed)
	case NodeTriples:
		return s.execTriplesNode(e, n.Patterns[0], pushed)
	default:
		return nil, fmt.Errorf("core: unknown node kind %v", n.Kind)
	}
}

// emptyRelation builds a zero-row relation with the given variables.
func (s *Store) emptyRelation(vars []string) *engine.Relation {
	return engine.NewRelation(engine.Schema(vars), make([][]engine.Row, s.parts), "")
}

// execScanNode evaluates one plan Scan operator. A node the planner
// rewrote to a materialized semi-join reduction resolves the reduction
// against the live workload model first — falling back to the full VP
// table (a superset, so results are unchanged) when it was evicted or
// invalidated after planning. Everything else goes through execNode.
func (s *Store) execScanNode(e *engine.Exec, cn *Node, pn *plan.Node, pushed []compiledFilter) (*engine.Relation, error) {
	if pn != nil && pn.ExtVP != nil && cn.Kind == NodeVP {
		if t, label, ok := s.extvpTable(pn.ExtVP); ok {
			return s.execVPTableNode(e, cn.Patterns[0], t, label, pushed)
		}
	}
	return s.execNode(e, cn, pushed)
}

// execVPNode answers one bound-predicate pattern from its VP table with
// a single filtered scan: bound-position constraints, repeated-variable
// equality and pushed-down FILTER predicates all run while the table
// streams off disk, then the surviving rows are shaped to the pattern's
// variables. Subject-keyed outputs stay subject-partitioned, so later
// subject joins avoid the shuffle.
func (s *Store) execVPNode(e *engine.Exec, tp sparql.TriplePattern, pushed []compiledFilter) (*engine.Relation, error) {
	pid, ok := s.dict.Lookup(tp.P.Term)
	if !ok {
		return s.emptyRelation(tp.Vars()), nil
	}
	table := s.vp[pid]
	if table == nil {
		return s.emptyRelation(tp.Vars()), nil
	}
	return s.execVPTableNode(e, tp, table, "VP "+localName(tp.P.Term.Value), pushed)
}

// execVPTableNode runs the VP scan over an explicit table — the full
// predicate table or a workload-materialized reduction of it; both
// hold raw (s,o) rows, so the scan predicate and output shaping are
// identical.
func (s *Store) execVPTableNode(e *engine.Exec, tp sparql.TriplePattern, table *VPTable, label string, pushed []compiledFilter) (*engine.Relation, error) {
	outVars := tp.Vars()
	pred, ok, err := s.vpScanPred(tp, pushed)
	if err != nil {
		return nil, err
	}
	if !ok {
		return s.emptyRelation(outVars), nil
	}
	rel, err := e.ScanFiltered(table.Rel, label, table.FileBytes, pred)
	if err != nil {
		return nil, err
	}
	return s.shapeVPScan(e, tp, rel)
}

// shapeVPScan shapes a VP scan's surviving raw (s,o) rows to the
// pattern's variables — shared by the local scan operator and the
// distributed gather path, so both produce identical relations.
func (s *Store) shapeVPScan(e *engine.Exec, tp sparql.TriplePattern, rel *engine.Relation) (*engine.Relation, error) {
	var err error
	switch {
	case tp.S.IsVar() && tp.O.IsVar() && tp.S.Var == tp.O.Var:
		rel, err = e.Project(rel, []string{"s"})
		if err != nil {
			return nil, err
		}
		return e.Rename(rel, []string{tp.S.Var})
	case tp.S.IsVar() && tp.O.IsVar():
		return e.Rename(rel, []string{tp.S.Var, tp.O.Var})
	case tp.S.IsVar():
		rel, err = e.Project(rel, []string{"s"})
		if err != nil {
			return nil, err
		}
		return e.Rename(rel, []string{tp.S.Var})
	case tp.O.IsVar():
		rel, err = e.Project(rel, []string{"o"})
		if err != nil {
			return nil, err
		}
		return e.Rename(rel, []string{tp.O.Var})
	default:
		// Fully bound: an existence test. A single empty row keeps join
		// semantics (cartesian with one row is the identity).
		return s.existenceRelation(rel), nil
	}
}

// vpScanPred assembles the scan-time predicate over a VP table's raw
// (s,o) rows for one pattern: bound-position constraints,
// repeated-variable equality and pushed-down FILTER predicates, fused
// into one check. ok=false reports a bound term absent from the
// dictionary — the scan is empty. A nil predicate with ok=true keeps
// every row. Shared by the materialized operator and the streaming
// pipeline source, so both modes test rows identically.
func (s *Store) vpScanPred(tp sparql.TriplePattern, pushed []compiledFilter) (pred func(engine.Row) bool, ok bool, err error) {
	var checks []func(engine.Row) bool
	if !tp.S.IsVar() {
		sid, found := s.dict.Lookup(tp.S.Term)
		if !found {
			return nil, false, nil
		}
		checks = append(checks, func(r engine.Row) bool { return r[0] == sid })
	}
	if !tp.O.IsVar() {
		oid, found := s.dict.Lookup(tp.O.Term)
		if !found {
			return nil, false, nil
		}
		checks = append(checks, func(r engine.Row) bool { return r[1] == oid })
	}
	if tp.S.IsVar() && tp.O.IsVar() && tp.S.Var == tp.O.Var {
		checks = append(checks, func(r engine.Row) bool { return r[0] == r[1] })
	}
	for _, f := range pushed {
		col := -1
		if tp.S.IsVar() && f.v == tp.S.Var {
			col = 0
		} else if tp.O.IsVar() && f.v == tp.O.Var {
			col = 1
		}
		if col < 0 {
			return nil, false, fmt.Errorf("core: pushed filter variable ?%s not in pattern %s", f.v, tp)
		}
		c, p := col, f.pred
		checks = append(checks, func(r engine.Row) bool { return p(r[c]) })
	}
	if len(checks) == 0 {
		return nil, true, nil
	}
	cs := checks
	return func(r engine.Row) bool {
		for _, c := range cs {
			if !c(r) {
				return false
			}
		}
		return true
	}, true, nil
}

// existenceRelation reduces a relation to zero columns: one empty row if
// any row matched, none otherwise.
func (s *Store) existenceRelation(rel *engine.Relation) *engine.Relation {
	parts := make([][]engine.Row, 1)
	if rel.NumRows() > 0 {
		parts[0] = []engine.Row{{}}
	}
	return engine.NewRelation(engine.Schema{}, parts, "")
}

// execTriplesNode answers a variable-predicate pattern from the raw
// triple data — the fallback path outside the WatDiv workload.
func (s *Store) execTriplesNode(e *engine.Exec, tp sparql.TriplePattern, pushed []compiledFilter) (*engine.Relation, error) {
	outVars := tp.Vars()
	rows, err := s.triplesMatches(tp, pushed)
	if err != nil {
		return nil, err
	}
	rel, err := engine.Partition(engine.Schema(outVars), rows, outVars[0], s.parts)
	if err != nil {
		return nil, err
	}
	// Charge a full-dataset scan (sum of all VP files).
	return e.Scan(rel, "triples ?"+tp.P.Var, s.triplesScanBytes())
}

// triplesMatches collects the raw-triple rows matching a
// variable-predicate pattern, applying pushed filters — the shared row
// source of the materialized operator and the streaming pipeline.
// Returned rows are freshly allocated (stable).
func (s *Store) triplesMatches(tp sparql.TriplePattern, pushed []compiledFilter) ([]engine.Row, error) {
	outVars := tp.Vars()
	rowPred, err := rowPredicate(outVars, pushed)
	if err != nil {
		return nil, err
	}
	// Resolve bound positions.
	var sid, oid rdf.ID
	if !tp.S.IsVar() {
		id, ok := s.dict.Lookup(tp.S.Term)
		if !ok {
			return nil, nil
		}
		sid = id
	}
	if !tp.O.IsVar() {
		id, ok := s.dict.Lookup(tp.O.Term)
		if !ok {
			return nil, nil
		}
		oid = id
	}
	var rows []engine.Row
	for _, t := range s.triples {
		if sid != rdf.NullID && t.S != sid {
			continue
		}
		if oid != rdf.NullID && t.O != oid {
			continue
		}
		row := make(engine.Row, 0, len(outVars))
		vals := map[string]rdf.ID{}
		okRow := true
		for _, pos := range []struct {
			pt  sparql.PatternTerm
			val rdf.ID
		}{{tp.S, t.S}, {tp.P, t.P}, {tp.O, t.O}} {
			if !pos.pt.IsVar() {
				continue
			}
			if prev, seen := vals[pos.pt.Var]; seen {
				if prev != pos.val {
					okRow = false
					break
				}
				continue
			}
			vals[pos.pt.Var] = pos.val
			row = append(row, pos.val)
		}
		if okRow && (rowPred == nil || rowPred(row)) {
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// triplesScanBytes is the disk charge of a raw-triples fallback scan:
// the whole dataset (sum of all VP files).
func (s *Store) triplesScanBytes() int64 {
	var total int64
	for _, t := range s.vp {
		total += t.FileBytes
	}
	return total
}
