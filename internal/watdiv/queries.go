package watdiv

import (
	"fmt"

	"repro/internal/sparql"
)

// Query is one named benchmark query.
type Query struct {
	// Name is the query's benchmark identifier (e.g. "S3").
	Name string
	// Group is the family letter: "C", "F", "L" or "S".
	Group string
	// Text is the SPARQL source.
	Text string
	// Parsed is the parsed form, ready for execution.
	Parsed *sparql.Query
}

// prologue declares the namespaces used by every query.
const prologue = `
PREFIX wsdbm: <http://db.uwaterloo.ca/~galuc/wsdbm/>
PREFIX sorg: <http://schema.org/>
PREFIX rev: <http://purl.org/stuff/rev#>
PREFIX gr: <http://purl.org/goodrelations/>
PREFIX foaf: <http://xmlns.com/foaf/>
PREFIX gn: <http://www.geonames.org/ontology#>
PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
`

// rawQueries defines the basic testing query set. Shapes follow the
// WatDiv families the paper reports on (§4.1): C = complex (cyclic,
// large intermediates), F = snowflake (multiple joined stars), L =
// linear (paths with a selective endpoint), S = star (single subject,
// constants of varying selectivity).
var rawQueries = []struct {
	name, group, body string
}{
	// ---- Complex -------------------------------------------------------
	// Like WatDiv's C family these are large (7–9 patterns), cyclic and
	// produce big intermediate results.
	{"C1", "C", `SELECT ?p ?u ?p2 ?g WHERE {
		?p rev:hasReview ?r .
		?r rev:reviewer ?u .
		?u wsdbm:likes ?p .
		?u wsdbm:follows ?f .
		?f wsdbm:likes ?p2 .
		?p2 sorg:caption ?c .
		?p wsdbm:hasGenre ?g .
	}`},
	{"C2", "C", `SELECT ?u ?f ?p ?rt WHERE {
		?u wsdbm:follows ?f .
		?u wsdbm:likes ?p .
		?f wsdbm:likes ?p .
		?u foaf:age ?a .
		?p rev:hasReview ?r .
		?r rev:rating ?rt .
	}`},
	{"C3", "C", `SELECT ?ret ?o ?u ?f WHERE {
		?ret gr:offers ?o .
		?o gr:includes ?p .
		?o gr:price ?pr .
		?u wsdbm:likes ?p .
		?u wsdbm:friendOf ?f .
		?f wsdbm:likes ?p .
		?p sorg:caption ?c .
	}`},
	// ---- Snowflake -----------------------------------------------------
	{"F1", "F", `SELECT ?p ?c ?rt ?u WHERE {
		?p wsdbm:hasGenre wsdbm:Genre3 .
		?p sorg:caption ?c .
		?p rev:hasReview ?r .
		?r rev:rating ?rt .
		?r rev:reviewer ?u .
	}`},
	{"F2", "F", `SELECT ?o ?pr ?c ?g WHERE {
		?o gr:includes ?p .
		?o gr:price ?pr .
		?o sorg:eligibleRegion wsdbm:Country1 .
		?p sorg:caption ?c .
		?p wsdbm:hasGenre ?g .
	}`},
	{"F3", "F", `SELECT ?u ?city ?d WHERE {
		?u wsdbm:gender "male" .
		?u wsdbm:livesIn ?city .
		?u wsdbm:likes ?p .
		?p sorg:description ?d .
	}`},
	{"F4", "F", `SELECT ?u ?url ?h WHERE {
		?u wsdbm:subscribes ?w .
		?w sorg:url ?url .
		?w wsdbm:hits ?h .
		?u foaf:age ?a .
	}`},
	{"F5", "F", `SELECT ?r ?rt ?n WHERE {
		?r rev:reviewer ?u .
		?r rev:rating ?rt .
		?r rev:title ?t .
		?u sorg:nationality wsdbm:Country4 .
		?u foaf:givenName ?n .
	}`},
	// ---- Linear --------------------------------------------------------
	{"L1", "L", `SELECT ?p ?c WHERE {
		wsdbm:User3 wsdbm:likes ?p .
		?p sorg:caption ?c .
	}`},
	{"L2", "L", `SELECT ?f ?u WHERE {
		?f wsdbm:follows ?u .
		?u wsdbm:follows wsdbm:User7 .
	}`},
	{"L3", "L", `SELECT ?u ?w WHERE {
		?u wsdbm:subscribes ?w .
		?w sorg:language wsdbm:Language2 .
	}`},
	{"L4", "L", `SELECT ?r ?u ?c WHERE {
		?r rev:reviewer ?u .
		?u wsdbm:livesIn ?c .
		?c gn:parentCountry wsdbm:Country8 .
	}`},
	{"L5", "L", `SELECT ?o ?p ?city WHERE {
		?o gr:includes ?p .
		?p wsdbm:composedBy ?u .
		?u wsdbm:livesIn ?city .
	}`},
	// ---- Star ----------------------------------------------------------
	{"S1", "S", `SELECT ?o ?p ?pr ?sn WHERE {
		?o gr:includes ?p .
		?o gr:price ?pr .
		?o gr:serialNumber ?sn .
		?o sorg:eligibleRegion wsdbm:Country2 .
	}`},
	{"S2", "S", `SELECT ?u ?a WHERE {
		?u wsdbm:gender "male" .
		?u sorg:nationality wsdbm:Country5 .
		?u foaf:age ?a .
		?u a wsdbm:User .
	}`},
	{"S3", "S", `SELECT ?p ?c ?r WHERE {
		?p a wsdbm:ProductCategory1 .
		?p sorg:caption ?c .
		?p sorg:contentRating ?r .
		?p wsdbm:hasGenre ?g .
	}`},
	{"S4", "S", `SELECT ?u ?e WHERE {
		?u foaf:age ?a .
		?u wsdbm:gender "female" .
		?u sorg:email ?e .
		?u wsdbm:livesIn wsdbm:City10 .
	}`},
	{"S5", "S", `SELECT ?p ?d ?k WHERE {
		?p a wsdbm:ProductCategory5 .
		?p sorg:description ?d .
		?p sorg:keywords ?k .
		?p sorg:language wsdbm:Language0 .
	}`},
	{"S6", "S", `SELECT ?r ?u ?t WHERE {
		?r rev:rating "8"^^xsd:integer .
		?r rev:reviewer ?u .
		?r rev:text ?t .
	}`},
	{"S7", "S", `SELECT ?w ?u ?h WHERE {
		?w sorg:url ?u .
		?w wsdbm:hits ?h .
		?w sorg:language wsdbm:Language1 .
	}`},
}

// rawExtended defines the extended-surface query set (E family): each
// exercises one of the operators beyond conjunctive BGPs — OPTIONAL
// left joins, UNION, ORDER BY/LIMIT top-K, GROUP BY with COUNT — plus
// combinations, over the same generated WatDiv vocabulary.
var rawExtended = []struct {
	name, body string
}{
	// E1: OPTIONAL — products in a genre, with their rating if any.
	{"E1", `SELECT ?p ?c ?r WHERE {
		?p wsdbm:hasGenre wsdbm:Genre3 .
		?p sorg:caption ?c .
		OPTIONAL { ?p sorg:contentRating ?r . }
	}`},
	// E2: UNION — users connected to a product by liking or authorship.
	{"E2", `SELECT ?u ?p WHERE {
		{ ?u wsdbm:likes ?p . }
		UNION
		{ ?p wsdbm:composedBy ?u . }
	}`},
	// E3: ORDER BY + LIMIT — top-rated reviews, a per-partition top-K.
	{"E3", `SELECT ?r ?rt WHERE {
		?r rev:rating ?rt .
		?r rev:reviewer ?u .
	} ORDER BY DESC(?rt) ?r LIMIT 10`},
	// E4: GROUP BY + COUNT — products per genre, largest first.
	{"E4", `SELECT ?g (COUNT(?p) AS ?n) WHERE {
		?p wsdbm:hasGenre ?g .
	} GROUP BY ?g ORDER BY DESC(?n) ?g`},
	// E5: OPTIONAL + ORDER BY + LIMIT combined.
	{"E5", `SELECT ?u ?city ?a WHERE {
		?u wsdbm:livesIn ?city .
		OPTIONAL { ?u foaf:age ?a . }
	} ORDER BY ?u ?city LIMIT 20`},
	// E6: plain LIMIT/OFFSET with no ORDER BY — the shape that used to
	// silently fall off the streaming path; result determinism comes
	// from the dictionary-ID total order.
	{"E6", `SELECT ?u ?f WHERE {
		?u wsdbm:follows ?f .
		?u wsdbm:likes ?p .
	} LIMIT 25 OFFSET 5`},
}

// BasicQuerySet returns the 20 queries in benchmark order (C1..C3,
// F1..F5, L1..L5, S1..S7), freshly parsed.
func BasicQuerySet() []Query {
	out := make([]Query, 0, len(rawQueries))
	for _, rq := range rawQueries {
		out = append(out, mustQuery(rq.name, rq.group, rq.body))
	}
	return out
}

// ExtendedQuerySet returns the E-family queries (E1..E6) covering the
// extended SPARQL surface, freshly parsed.
func ExtendedQuerySet() []Query {
	out := make([]Query, 0, len(rawExtended))
	for _, rq := range rawExtended {
		out = append(out, mustQuery(rq.name, "E", rq.body))
	}
	return out
}

func mustQuery(name, group, body string) Query {
	text := prologue + body
	parsed, err := sparql.Parse(text)
	if err != nil {
		// The query sets are compile-time constants of this package;
		// a parse failure is a programming error.
		panic(fmt.Sprintf("watdiv: query %s does not parse: %v", name, err))
	}
	parsed.Name = name
	return Query{Name: name, Group: group, Text: text, Parsed: parsed}
}

// QueryByName returns the named query from the basic or extended set.
func QueryByName(name string) (Query, error) {
	for _, q := range BasicQuerySet() {
		if q.Name == name {
			return q, nil
		}
	}
	for _, q := range ExtendedQuerySet() {
		if q.Name == name {
			return q, nil
		}
	}
	return Query{}, fmt.Errorf("watdiv: no query named %q", name)
}

// Groups returns the family letters in benchmark order.
func Groups() []string { return []string{"C", "F", "L", "S"} }

// GroupLabel expands a family letter to the paper's label.
func GroupLabel(g string) string {
	switch g {
	case "C":
		return "Complex"
	case "F":
		return "Snowflake"
	case "L":
		return "Linear"
	case "S":
		return "Star"
	case "E":
		return "Extended"
	default:
		return g
	}
}
