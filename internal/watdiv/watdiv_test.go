package watdiv

import (
	"testing"

	"repro/internal/rdf"
	"repro/internal/sparql"
)

func TestGenerateDeterministic(t *testing.T) {
	g1 := MustGenerate(Config{Scale: 120, Seed: 7})
	g2 := MustGenerate(Config{Scale: 120, Seed: 7})
	if g1.Len() != g2.Len() {
		t.Fatalf("same seed produced %d vs %d triples", g1.Len(), g2.Len())
	}
	for i := range g1.Triples() {
		if g1.Triples()[i] != g2.Triples()[i] {
			t.Fatalf("triple %d differs between same-seed runs", i)
		}
	}
	g3 := MustGenerate(Config{Scale: 120, Seed: 8})
	if g3.Len() == g1.Len() {
		// Lengths can rarely coincide, so compare contents too.
		same := true
		for i := range g1.Triples() {
			if g1.Triples()[i] != g3.Triples()[i] {
				same = false
				break
			}
		}
		if same {
			t.Errorf("different seeds produced identical datasets")
		}
	}
}

func TestGenerateScaleTooSmall(t *testing.T) {
	if _, err := Generate(Config{Scale: 10}); err == nil {
		t.Errorf("Generate below MinScale succeeded")
	}
}

func TestGenerateTripleVolume(t *testing.T) {
	scale := 200
	g := MustGenerate(Config{Scale: scale, Seed: 1})
	// ≈21 triples per scale unit; accept a generous band.
	lo, hi := 14*scale, 30*scale
	if g.Len() < lo || g.Len() > hi {
		t.Errorf("generated %d triples at scale %d, want within [%d, %d]", g.Len(), scale, lo, hi)
	}
}

func TestGenerateValidTriples(t *testing.T) {
	g := MustGenerate(Config{Scale: MinScale, Seed: 3})
	for i, tr := range g.Triples() {
		if !tr.Valid() {
			t.Fatalf("triple %d invalid: %v", i, tr)
		}
	}
}

func TestGenerateCoversQueryConstants(t *testing.T) {
	g := MustGenerate(Config{Scale: MinScale, Seed: 1})
	subjects := make(map[rdf.Term]bool)
	objects := make(map[rdf.Term]bool)
	preds := make(map[rdf.Term]bool)
	for _, tr := range g.Triples() {
		subjects[tr.S] = true
		objects[tr.O] = true
		preds[tr.P] = true
	}
	// Every bound term in the query set must exist in the data (as any
	// position) so the benchmark queries are not trivially empty.
	for _, q := range BasicQuerySet() {
		for _, tp := range q.Parsed.Patterns {
			if !tp.P.IsVar() && !preds[tp.P.Term] {
				t.Errorf("%s: predicate %v not generated", q.Name, tp.P.Term)
			}
			if !tp.S.IsVar() && !subjects[tp.S.Term] {
				t.Errorf("%s: subject %v not generated", q.Name, tp.S.Term)
			}
			if !tp.O.IsVar() && !objects[tp.O.Term] && !subjects[tp.O.Term] {
				t.Errorf("%s: object constant %v not generated", q.Name, tp.O.Term)
			}
		}
	}
}

func TestBasicQuerySetComplete(t *testing.T) {
	qs := BasicQuerySet()
	if len(qs) != 20 {
		t.Fatalf("query set has %d queries, want 20", len(qs))
	}
	counts := map[string]int{}
	for _, q := range qs {
		counts[q.Group]++
		if q.Parsed == nil || len(q.Parsed.Patterns) == 0 {
			t.Errorf("%s: not parsed", q.Name)
		}
		if q.Parsed.Name != q.Name {
			t.Errorf("%s: parsed name = %q", q.Name, q.Parsed.Name)
		}
	}
	want := map[string]int{"C": 3, "F": 5, "L": 5, "S": 7}
	for g, n := range want {
		if counts[g] != n {
			t.Errorf("group %s has %d queries, want %d", g, counts[g], n)
		}
	}
}

func TestQueryShapesMatchGroups(t *testing.T) {
	shapeFor := map[string]sparql.Shape{
		"C": sparql.ShapeComplex,
		"F": sparql.ShapeSnowflake,
		"L": sparql.ShapeLinear,
		"S": sparql.ShapeStar,
	}
	for _, q := range BasicQuerySet() {
		want := shapeFor[q.Group]
		if got := q.Parsed.Shape(); got != want {
			t.Errorf("%s: classified as %s, want %s (group %s)", q.Name, got.Label(), want.Label(), q.Group)
		}
	}
}

func TestQueryByName(t *testing.T) {
	q, err := QueryByName("S3")
	if err != nil {
		t.Fatalf("QueryByName: %v", err)
	}
	if q.Name != "S3" || q.Group != "S" {
		t.Errorf("QueryByName(S3) = %+v", q)
	}
	if _, err := QueryByName("Z9"); err == nil {
		t.Errorf("QueryByName(Z9) succeeded")
	}
}

func TestGroupLabels(t *testing.T) {
	want := map[string]string{"C": "Complex", "F": "Snowflake", "L": "Linear", "S": "Star", "X": "X"}
	for g, l := range want {
		if got := GroupLabel(g); got != l {
			t.Errorf("GroupLabel(%s) = %q, want %q", g, got, l)
		}
	}
	if len(Groups()) != 4 {
		t.Errorf("Groups() = %v", Groups())
	}
}

func TestMultiValuedPredicatesPresent(t *testing.T) {
	// follows and rdf:type must be multi-valued so the Property Table's
	// list columns are exercised at every scale.
	g := MustGenerate(Config{Scale: MinScale, Seed: 2})
	bySubjPred := map[[2]rdf.Term]int{}
	for _, tr := range g.Triples() {
		bySubjPred[[2]rdf.Term{tr.S, tr.P}]++
	}
	multi := map[string]bool{}
	for k, n := range bySubjPred {
		if n > 1 {
			multi[k[1].Value] = true
		}
	}
	for _, p := range []string{NSwsdbm + "follows", NSrdf + "type"} {
		if !multi[p] {
			t.Errorf("predicate %s never multi-valued at MinScale", p)
		}
	}
}
