// Package watdiv generates WatDiv-like RDF datasets and provides the 20
// basic-testing queries (C1–C3, F1–F5, L1–L5, S1–S7) the paper evaluates
// with (§4.1). The original Waterloo SPARQL Diversity Test Suite is a
// C++ tool with proprietary template files; this reimplementation
// reproduces what the evaluation depends on: the e-commerce schema
// (users, products, reviews, offers, retailers, websites, geography),
// per-predicate cardinality and presence skew, multi-valued predicates,
// and a query set stratified into the four structural families with
// varying selectivity.
package watdiv

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/rdf"
)

// Namespaces used by the generated data and the query set.
const (
	NSwsdbm = "http://db.uwaterloo.ca/~galuc/wsdbm/"
	NSsorg  = "http://schema.org/"
	NSrev   = "http://purl.org/stuff/rev#"
	NSgr    = "http://purl.org/goodrelations/"
	NSfoaf  = "http://xmlns.com/foaf/"
	NSgn    = "http://www.geonames.org/ontology#"
	NSrdf   = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
)

// Fixed-cardinality entity pools (scale-independent, as in WatDiv).
const (
	NumCountries  = 25
	NumCities     = 240
	NumGenres     = 21
	NumLanguages  = 12
	NumCategories = 15
)

// MinScale is the smallest scale at which every constant in the basic
// query set is guaranteed to exist.
const MinScale = 100

// Config parameterizes dataset generation.
type Config struct {
	// Scale is the number of users; every other entity count derives
	// from it (products = Scale/2, reviews = Scale, offers = Scale/2,
	// websites = Scale/20, retailers = Scale/50). Total triples ≈
	// 21×Scale.
	Scale int
	// Seed makes generation deterministic (0 means seed 1).
	Seed int64
}

// Generate produces the dataset for the configuration.
func Generate(cfg Config) (*rdf.Graph, error) {
	if cfg.Scale < MinScale {
		return nil, fmt.Errorf("watdiv: scale %d below MinScale %d", cfg.Scale, MinScale)
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	g := &generator{
		rng:   rand.New(rand.NewSource(seed)),
		graph: rdf.NewGraph(cfg.Scale * 22),
		scale: cfg.Scale,
	}
	g.run()
	return g.graph, nil
}

// MustGenerate is Generate that panics on error; for fixtures.
func MustGenerate(cfg Config) *rdf.Graph {
	g, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return g
}

type generator struct {
	rng   *rand.Rand
	graph *rdf.Graph
	scale int
}

// Entity IRI constructors (exported helpers so tests and examples can
// reference generated entities).

// UserIRI returns the IRI of user i.
func UserIRI(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("%sUser%d", NSwsdbm, i)) }

// ProductIRI returns the IRI of product i.
func ProductIRI(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("%sProduct%d", NSwsdbm, i)) }

// ReviewIRI returns the IRI of review i.
func ReviewIRI(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("%sReview%d", NSwsdbm, i)) }

// OfferIRI returns the IRI of offer i.
func OfferIRI(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("%sOffer%d", NSwsdbm, i)) }

// RetailerIRI returns the IRI of retailer i.
func RetailerIRI(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("%sRetailer%d", NSwsdbm, i)) }

// WebsiteIRI returns the IRI of website i.
func WebsiteIRI(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("%sWebsite%d", NSwsdbm, i)) }

// CityIRI returns the IRI of city i.
func CityIRI(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("%sCity%d", NSwsdbm, i)) }

// CountryIRI returns the IRI of country i.
func CountryIRI(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("%sCountry%d", NSwsdbm, i)) }

// GenreIRI returns the IRI of genre i.
func GenreIRI(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("%sGenre%d", NSwsdbm, i)) }

// LanguageIRI returns the IRI of language i.
func LanguageIRI(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("%sLanguage%d", NSwsdbm, i)) }

// CategoryIRI returns the IRI of product category i.
func CategoryIRI(i int) rdf.Term {
	return rdf.NewIRI(fmt.Sprintf("%sProductCategory%d", NSwsdbm, i))
}

// Counts derived from scale.

// Products returns the product count at the given scale.
func Products(scale int) int { return max2(scale / 2) }

// Reviews returns the review count at the given scale.
func Reviews(scale int) int { return scale }

// Offers returns the offer count at the given scale.
func Offers(scale int) int { return max2(scale / 2) }

// Websites returns the website count at the given scale.
func Websites(scale int) int { return max2(scale / 20) }

// Retailers returns the retailer count at the given scale.
func Retailers(scale int) int { return max2(scale / 50) }

func max2(n int) int {
	if n < 2 {
		return 2
	}
	return n
}

func (g *generator) add(s rdf.Term, pred string, o rdf.Term) {
	g.graph.AddSPO(s, rdf.NewIRI(pred), o)
}

func (g *generator) with(prob float64) bool { return g.rng.Float64() < prob }

// zipfIndex draws a power-law-biased index in [0, n): low indexes are
// strongly preferred, giving the cardinality skew WatDiv stresses.
func (g *generator) zipfIndex(n int) int {
	i := int(float64(n) * math.Pow(g.rng.Float64(), 3))
	if i >= n {
		i = n - 1
	}
	return i
}

func (g *generator) intLit(n int) rdf.Term {
	return rdf.NewTypedLiteral(fmt.Sprintf("%d", n), rdf.XSDInteger)
}

var wordPool = []string{
	"ancient", "basalt", "cobalt", "drift", "ember", "fathom", "glacier",
	"harbor", "isotope", "juniper", "krypton", "lattice", "meridian",
	"nimbus", "obsidian", "prism", "quartz", "ripple", "summit", "tundra",
	"umbra", "vertex", "willow", "xenon", "yonder", "zephyr",
}

func (g *generator) words(n int) rdf.Term {
	out := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			out += " "
		}
		out += wordPool[g.rng.Intn(len(wordPool))]
	}
	return rdf.NewLiteral(out)
}

func (g *generator) run() {
	g.cities()
	g.websites()
	g.retailers()
	g.users()
	g.products()
	g.reviews()
	g.offers()
}

func (g *generator) cities() {
	for i := 0; i < NumCities; i++ {
		g.add(CityIRI(i), NSgn+"parentCountry", CountryIRI(i%NumCountries))
	}
}

func (g *generator) websites() {
	for i := 0; i < Websites(g.scale); i++ {
		w := WebsiteIRI(i)
		g.add(w, NSsorg+"url", rdf.NewLiteral(fmt.Sprintf("http://www.site%d.example/", i)))
		g.add(w, NSwsdbm+"hits", g.intLit(g.rng.Intn(1_000_000)))
		if g.with(0.6) {
			g.add(w, NSsorg+"language", LanguageIRI(g.rng.Intn(NumLanguages)))
		}
	}
}

func (g *generator) retailers() {
	for i := 0; i < Retailers(g.scale); i++ {
		r := RetailerIRI(i)
		g.add(r, NSsorg+"legalName", g.words(2))
		if g.with(0.5) {
			g.add(r, NSsorg+"homepage", WebsiteIRI(g.rng.Intn(Websites(g.scale))))
		}
	}
}

func (g *generator) users() {
	nUsers := g.scale
	nProducts := Products(g.scale)
	nWebsites := Websites(g.scale)
	for i := 0; i < nUsers; i++ {
		u := UserIRI(i)
		g.add(u, NSrdf+"type", rdf.NewIRI(NSwsdbm+"User"))
		g.add(u, NSwsdbm+"userId", g.intLit(i))
		// follows: 1–5 targets, popularity-skewed (multi-valued).
		deg := 1 + g.rng.Intn(5)
		for k := 0; k < deg; k++ {
			g.add(u, NSwsdbm+"follows", UserIRI(g.zipfIndex(nUsers)))
		}
		if g.with(0.4) {
			for k := 0; k < 1+g.rng.Intn(2); k++ {
				g.add(u, NSwsdbm+"friendOf", UserIRI(g.rng.Intn(nUsers)))
			}
		}
		if g.with(0.35) {
			for k := 0; k < 1+g.rng.Intn(3); k++ {
				g.add(u, NSwsdbm+"likes", ProductIRI(g.zipfIndex(nProducts)))
			}
		}
		if g.with(0.3) {
			for k := 0; k < 1+g.rng.Intn(2); k++ {
				g.add(u, NSwsdbm+"subscribes", WebsiteIRI(g.zipfIndex(nWebsites)))
			}
		}
		if g.with(0.3) {
			g.add(u, NSsorg+"email", rdf.NewLiteral(fmt.Sprintf("user%d@example.org", i)))
		}
		if g.with(0.5) {
			g.add(u, NSfoaf+"age", g.intLit(18+g.rng.Intn(63)))
		}
		if g.with(0.8) {
			gender := "male"
			if g.rng.Intn(2) == 0 {
				gender = "female"
			}
			g.add(u, NSwsdbm+"gender", rdf.NewLiteral(gender))
		}
		if g.with(0.4) {
			g.add(u, NSsorg+"nationality", CountryIRI(g.rng.Intn(NumCountries)))
		}
		if g.with(0.35) {
			g.add(u, NSwsdbm+"livesIn", CityIRI(g.rng.Intn(NumCities)))
		}
		if g.with(0.7) {
			g.add(u, NSfoaf+"givenName", g.words(1))
		}
		if g.with(0.5) {
			g.add(u, NSfoaf+"familyName", g.words(1))
		}
	}
}

func (g *generator) products() {
	nProducts := Products(g.scale)
	for i := 0; i < nProducts; i++ {
		p := ProductIRI(i)
		g.add(p, NSrdf+"type", rdf.NewIRI(NSwsdbm+"Product"))
		g.add(p, NSrdf+"type", CategoryIRI(i%NumCategories))
		if g.with(0.8) {
			g.add(p, NSsorg+"caption", g.words(3))
		}
		if g.with(0.6) {
			g.add(p, NSsorg+"description", g.words(8))
		}
		if g.with(0.9) {
			for k := 0; k < 1+g.rng.Intn(2); k++ {
				g.add(p, NSwsdbm+"hasGenre", GenreIRI(g.rng.Intn(NumGenres)))
			}
		}
		if g.with(0.4) {
			ratings := []string{"G", "PG", "PG-13", "R"}
			g.add(p, NSsorg+"contentRating", rdf.NewLiteral(ratings[g.rng.Intn(len(ratings))]))
		}
		if g.with(0.5) {
			g.add(p, NSsorg+"keywords", g.words(4))
		}
		if g.with(0.5) {
			g.add(p, NSsorg+"language", LanguageIRI(g.rng.Intn(NumLanguages)))
		}
		if g.with(0.15) {
			g.add(p, NSwsdbm+"composedBy", UserIRI(g.rng.Intn(g.scale)))
		}
	}
}

func (g *generator) reviews() {
	nProducts := Products(g.scale)
	for i := 0; i < Reviews(g.scale); i++ {
		r := ReviewIRI(i)
		// Reviews attach to popularity-skewed products.
		g.add(ProductIRI(g.zipfIndex(nProducts)), NSrev+"hasReview", r)
		g.add(r, NSrev+"reviewer", UserIRI(g.rng.Intn(g.scale)))
		g.add(r, NSrev+"rating", g.intLit(1+g.rng.Intn(10)))
		if g.with(0.9) {
			g.add(r, NSrev+"text", g.words(12))
		}
		if g.with(0.7) {
			g.add(r, NSrev+"title", g.words(3))
		}
		if g.with(0.4) {
			g.add(r, NSrev+"totalVotes", g.intLit(g.rng.Intn(500)))
		}
	}
}

func (g *generator) offers() {
	nProducts := Products(g.scale)
	nRetailers := Retailers(g.scale)
	for i := 0; i < Offers(g.scale); i++ {
		o := OfferIRI(i)
		g.add(RetailerIRI(i%nRetailers), NSgr+"offers", o)
		g.add(o, NSgr+"includes", ProductIRI(g.zipfIndex(nProducts)))
		g.add(o, NSgr+"price", g.intLit(10+g.rng.Intn(9990)))
		if g.with(0.7) {
			g.add(o, NSgr+"serialNumber", g.intLit(g.rng.Intn(1_000_000_000)))
		}
		if g.with(0.5) {
			g.add(o, NSgr+"validFrom", rdf.NewTypedLiteral(g.date(), rdf.XSDDate))
		}
		if g.with(0.5) {
			g.add(o, NSgr+"validThrough", rdf.NewTypedLiteral(g.date(), rdf.XSDDate))
		}
		if g.with(0.6) {
			for k := 0; k < 1+g.rng.Intn(3); k++ {
				g.add(o, NSsorg+"eligibleRegion", CountryIRI(g.rng.Intn(NumCountries)))
			}
		}
		if g.with(0.3) {
			g.add(o, NSsorg+"priceValidUntil", rdf.NewTypedLiteral(g.date(), rdf.XSDDate))
		}
	}
}

func (g *generator) date() string {
	return fmt.Sprintf("20%02d-%02d-%02d", 10+g.rng.Intn(10), 1+g.rng.Intn(12), 1+g.rng.Intn(28))
}
