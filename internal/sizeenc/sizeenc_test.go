package sizeenc

import (
	"fmt"
	"testing"

	"repro/internal/rdf"
)

func termSet(dict *rdf.Dictionary, terms ...rdf.Term) map[rdf.ID]struct{} {
	ids := make(map[rdf.ID]struct{}, len(terms))
	for _, t := range terms {
		ids[dict.Encode(t)] = struct{}{}
	}
	return ids
}

func TestCompressedTermBytesEmpty(t *testing.T) {
	d := rdf.NewDictionary()
	n := CompressedTermBytes(d, nil)
	if n <= 0 || n > 16 {
		t.Errorf("empty set compressed to %d bytes, want a small flate header", n)
	}
}

func TestCompressedTermBytesGrowsWithContent(t *testing.T) {
	d := rdf.NewDictionary()
	small := termSet(d, rdf.NewIRI("http://example.org/a"))
	big := make(map[rdf.ID]struct{})
	for i := 0; i < 500; i++ {
		big[d.Encode(rdf.NewIRI(fmt.Sprintf("http://example.org/entity/%d", i)))] = struct{}{}
	}
	sSmall := CompressedTermBytes(d, small)
	sBig := CompressedTermBytes(d, big)
	if sBig <= sSmall {
		t.Errorf("500 terms (%d bytes) not larger than 1 term (%d bytes)", sBig, sSmall)
	}
	// Shared prefixes must compress well below the raw string volume.
	var raw int64
	for id := range big {
		raw += int64(len(d.Term(id).Value))
	}
	if sBig >= raw {
		t.Errorf("compressed %d bytes ≥ raw %d bytes; deflate gained nothing", sBig, raw)
	}
}

func TestCompressedTermBytesDeterministic(t *testing.T) {
	d := rdf.NewDictionary()
	ids := termSet(d,
		rdf.NewIRI("http://example.org/x"),
		rdf.NewLiteral("hello"),
		rdf.NewTypedLiteral("5", rdf.XSDInteger),
		rdf.NewLangLiteral("chat", "fr"),
	)
	a := CompressedTermBytes(d, ids)
	b := CompressedTermBytes(d, ids)
	if a != b {
		t.Errorf("same input compressed to %d then %d bytes", a, b)
	}
}

func TestCountingWriter(t *testing.T) {
	var w CountingWriter
	n, err := w.Write([]byte("hello"))
	if err != nil || n != 5 || w.N != 5 {
		t.Errorf("Write = %d,%v N=%d", n, err, w.N)
	}
	w.Write([]byte(" world"))
	if w.N != 11 {
		t.Errorf("N = %d, want 11", w.N)
	}
}
