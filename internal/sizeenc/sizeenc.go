// Package sizeenc estimates on-disk sizes for stored tables by running
// real deflate compression over the real term strings — the honest
// stand-in for Parquet dictionary pages and Accumulo block compression
// that keeps Table 1's size ratios meaningful.
package sizeenc

import (
	"compress/flate"
	"fmt"
	"io"
	"sort"

	"repro/internal/rdf"
)

// CompressedTermBytes returns the deflate-compressed size of the terms
// named by ids, iterated in ascending ID order for determinism.
func CompressedTermBytes(dict *rdf.Dictionary, ids map[rdf.ID]struct{}) int64 {
	ordered := make([]rdf.ID, 0, len(ids))
	for id := range ids {
		ordered = append(ordered, id)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
	cw := &CountingWriter{}
	fw, err := flate.NewWriter(cw, flate.BestSpeed)
	if err != nil {
		// flate.NewWriter fails only on invalid compression levels.
		panic(fmt.Sprintf("sizeenc: flate writer: %v", err))
	}
	for _, id := range ordered {
		t := dict.Term(id)
		io.WriteString(fw, t.Value)
		io.WriteString(fw, t.Datatype)
		io.WriteString(fw, t.Lang)
		fw.Write([]byte{'\n'})
	}
	fw.Close()
	return cw.N
}

// CountingWriter counts the bytes written through it.
type CountingWriter struct{ N int64 }

// Write implements io.Writer.
func (w *CountingWriter) Write(p []byte) (int, error) {
	w.N += int64(len(p))
	return len(p), nil
}
