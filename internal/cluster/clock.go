package cluster

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// StageRecord is the priced execution trace of one stage.
type StageRecord struct {
	// Name is the stage's human-readable label.
	Name string
	// Launch is the fixed launch overhead charged for the stage.
	Launch time.Duration
	// Tasks is the number of partitions executed.
	Tasks int
	// Elapsed is launch overhead plus makespan.
	Elapsed time.Duration
	// Makespan is the slowest simulated worker's total task time.
	Makespan time.Duration
	// Stats aggregates the work of every task in the stage.
	Stats TaskStats
}

// Clock accumulates the virtual elapsed time of one query or one loading
// run. Stages charged directly are assumed sequential (each stage
// consumes the previous stage's output), matching how a Spark job DAG
// materializes shuffle boundaries; the DAG scheduler instead computes a
// critical path over per-task clocks and publishes it with MergeTrace.
// Clock is safe for concurrent use.
type Clock struct {
	mu     sync.Mutex
	total  time.Duration
	stages []StageRecord
}

// NewClock returns a zeroed clock.
func NewClock() *Clock { return &Clock{} }

// chargeStage appends a stage record and advances the clock.
func (c *Clock) chargeStage(r StageRecord) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stages = append(c.stages, r)
	c.total += r.Elapsed
}

// Charge adds a bare duration to the clock (used by loaders for
// client-side phases like dictionary construction).
func (c *Clock) Charge(name string, d time.Duration) {
	c.chargeStage(StageRecord{Name: name, Tasks: 1, Elapsed: d, Makespan: d})
}

// Elapsed returns the virtual time accumulated so far.
func (c *Clock) Elapsed() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// Stages returns a copy of the execution trace.
func (c *Clock) Stages() []StageRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]StageRecord, len(c.stages))
	copy(out, c.stages)
	return out
}

// Absorb appends stage records collected on another clock (the DAG
// scheduler runs each task against its own clock, then merges the
// traces in deterministic plan order). The total advances by the
// stages' elapsed sum.
func (c *Clock) Absorb(stages []StageRecord) {
	for _, s := range stages {
		c.chargeStage(s)
	}
}

// MergeTrace appends a pre-assembled trace whose stages overlapped,
// advancing the total by the given critical-path elapsed rather than
// the stages' sum. The DAG scheduler uses it to publish one query's
// record into a possibly shared clock in a single atomic step, so
// concurrent queries accumulating into the same clock never lose
// updates.
func (c *Clock) MergeTrace(stages []StageRecord, elapsed time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stages = append(c.stages, stages...)
	c.total += elapsed
}

// Reset zeroes the clock and discards the trace.
func (c *Clock) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.total = 0
	c.stages = nil
}

// Trace renders the stage trace as an indented multi-line string, used
// by the EXPLAIN ANALYZE output of the query tools.
func (c *Clock) Trace() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var sb strings.Builder
	for i, s := range c.stages {
		fmt.Fprintf(&sb, "%2d. %-40s %10s  tasks=%-3d rows=%-9d shuffle=%s disk=%s seeks=%d\n",
			i+1, s.Name, s.Elapsed.Round(time.Microsecond), s.Tasks, s.Stats.Rows,
			humanBytes(s.Stats.NetBytes), humanBytes(s.Stats.DiskBytes), s.Stats.Seeks)
	}
	fmt.Fprintf(&sb, "    total: %s\n", c.total.Round(time.Microsecond))
	return sb.String()
}

// humanBytes renders a byte count with a binary unit suffix.
func humanBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
