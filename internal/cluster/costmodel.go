package cluster

import "time"

// CostModel prices distributed operations on the virtual clock. The
// defaults are calibrated to the paper's environment (6-core Xeon
// E5-2420 machines, Gigabit Ethernet, Cloudera CDH 5.11, Spark 2.1);
// see DESIGN.md §4. Every field is exported so ablation benchmarks can
// perturb a single knob.
//
// Launch costs follow Spark's actual execution model: work pipelines
// freely inside a stage (scan→filter→project→probe cost no extra
// launches); a new stage is launched at every shuffle or broadcast
// exchange boundary; and each query pays a start cost — small query
// planning in a warm Spark SQL session (PRoST, S2RDF), or a full
// spark-submit JVM/context startup for systems that compile and submit
// a fresh program per query (SPARQLGX), which is why the paper measures
// SPARQLGX at a nearly flat ~20s floor.
type CostModel struct {
	// DiskBytesPerSec is HDFS streaming-read throughput per worker.
	DiskBytesPerSec float64
	// NetworkBytesPerSec is shuffle throughput per worker (Gigabit
	// Ethernet minus protocol overhead).
	NetworkBytesPerSec float64
	// RowTime is the in-memory CPU cost per row per operator.
	RowTime time.Duration
	// SQLPlanning is the per-query planning cost in a warm Spark SQL
	// session.
	SQLPlanning time.Duration
	// SQLStageLaunch is the per-boundary-stage launch cost under Spark
	// SQL.
	SQLStageLaunch time.Duration
	// RDDSubmit is the spark-submit cost (JVM + SparkContext startup)
	// paid by each compiled RDD program — once per SPARQLGX query and
	// once per bulk-loading job of any system.
	RDDSubmit time.Duration
	// RDDStageLaunch is the per-boundary-stage launch cost of a bare
	// RDD job.
	RDDStageLaunch time.Duration
	// SeekTime is the round-trip of one remote KV point lookup
	// (Rya client → Accumulo tablet server).
	SeekTime time.Duration
	// KVScanBytesPerSec is KV range-scan streaming throughput.
	KVScanBytesPerSec float64
}

// DefaultCostModel returns the calibration used by all experiments.
func DefaultCostModel() CostModel {
	return CostModel{
		DiskBytesPerSec:    100 << 20, // 100 MiB/s HDFS scan
		NetworkBytesPerSec: 110 << 20, // ~Gigabit Ethernet
		RowTime:            120 * time.Nanosecond,
		SQLPlanning:        100 * time.Millisecond,
		SQLStageLaunch:     150 * time.Millisecond,
		RDDSubmit:          7 * time.Second,
		RDDStageLaunch:     700 * time.Millisecond,
		SeekTime:           400 * time.Microsecond,
		KVScanBytesPerSec:  25 << 20, // 25 MiB/s remote scan
	}
}

// ShuffleJoinTime prices a shuffle hash join candidate on estimated
// inputs: a full stage launch, the moved bytes spread over the
// workers, and the per-row processing of both inputs plus the output.
// The cost-based planner uses it to select physical join methods from
// cardinality estimates instead of a single global size threshold.
func (m CostModel) ShuffleJoinTime(movedBytes, rows int64, workers int) time.Duration {
	if workers < 1 {
		workers = 1
	}
	per := TaskStats{NetBytes: movedBytes / int64(workers), Rows: rows / int64(workers)}
	return m.SQLStageLaunch + m.TaskTime(per)
}

// BroadcastJoinTime prices a broadcast hash join candidate: a third of
// a stage launch (the probe side pipelines into the open stage; only
// the build-side collection job launches), every worker receiving one
// copy of the build side, and the per-row processing of the probe
// input plus the output.
func (m CostModel) BroadcastJoinTime(buildBytes, rows int64, workers int) time.Duration {
	if workers < 1 {
		workers = 1
	}
	per := TaskStats{NetBytes: buildBytes, Rows: rows / int64(workers)}
	return m.SQLStageLaunch/3 + m.TaskTime(per)
}

// SkewedShuffleJoinTime prices a shuffle hash join whose input rows
// concentrate on one key: hotFrac is the fraction of all rows sharing
// the hottest join-key value, and saltFrac is the engine's salting
// trigger (a hot key at or above it is split into per-worker sub-keys;
// zero or negative disables salting). Three regimes fall out:
//
//   - hotFrac within one worker's fair share: the plain shuffle price —
//     the hot key does not dominate any worker.
//   - hotFrac at or above saltFrac: the engine salts, so the rows
//     balance again, at the cost of shipping and probing one extra copy
//     of the hot fraction (the replicated probe rows).
//   - in between: the hot key's rows serialize on one worker, so the
//     per-row term is priced on the hot fraction instead of the fair
//     share — the makespan penalty salting exists to remove.
//
// The adaptive re-planner uses it to price shuffle candidates over
// materialized intermediates whose key histogram is known exactly.
func (m CostModel) SkewedShuffleJoinTime(movedBytes, rows int64, workers int, hotFrac, saltFrac float64) time.Duration {
	if workers < 1 {
		workers = 1
	}
	fair := 1.0 / float64(workers)
	if hotFrac <= fair {
		return m.ShuffleJoinTime(movedBytes, rows, workers)
	}
	if saltFrac > 0 && hotFrac >= saltFrac {
		grown := 1 + hotFrac
		per := TaskStats{
			NetBytes: int64(float64(movedBytes) * grown / float64(workers)),
			Rows:     int64(float64(rows) * grown / float64(workers)),
		}
		return m.SQLStageLaunch + m.TaskTime(per)
	}
	per := TaskStats{
		NetBytes: movedBytes / int64(workers),
		Rows:     int64(float64(rows) * hotFrac),
	}
	return m.SQLStageLaunch + m.TaskTime(per)
}

// TaskTime prices one task's recorded work.
func (m CostModel) TaskTime(s TaskStats) time.Duration {
	var d time.Duration
	if s.DiskBytes > 0 && m.DiskBytesPerSec > 0 {
		d += time.Duration(float64(s.DiskBytes) / m.DiskBytesPerSec * float64(time.Second))
	}
	if s.NetBytes > 0 && m.NetworkBytesPerSec > 0 {
		d += time.Duration(float64(s.NetBytes) / m.NetworkBytesPerSec * float64(time.Second))
	}
	if s.Rows > 0 {
		d += time.Duration(s.Rows) * m.RowTime
	}
	if s.Seeks > 0 {
		d += time.Duration(s.Seeks) * m.SeekTime
	}
	if s.KVScanBytes > 0 && m.KVScanBytesPerSec > 0 {
		d += time.Duration(float64(s.KVScanBytes) / m.KVScanBytesPerSec * float64(time.Second))
	}
	return d
}
