// Package cluster simulates the distributed execution fabric the paper
// runs on (a 10-machine Spark/Hadoop cluster). It executes stages of
// partitioned tasks with real Go parallelism while charging every
// distributed cost — disk scans, network shuffles, job-launch latency,
// key-value seeks — to a virtual clock. Relational work done on top of
// this package is real computation over real partitioned data; only the
// *pricing* of cluster effects is simulated, so benchmark shapes mirror
// the paper without the hardware.
package cluster

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Config describes the simulated cluster topology.
type Config struct {
	// Workers is the number of worker machines (the paper uses 9 workers
	// plus one master).
	Workers int
	// DefaultPartitions is the number of partitions a freshly loaded
	// dataset is split into. Spark defaults to a small multiple of the
	// total core count.
	DefaultPartitions int
	// Cost prices distributed operations on the virtual clock.
	Cost CostModel
	// MaxParallel bounds real goroutine parallelism when executing
	// stages; 0 means GOMAXPROCS.
	MaxParallel int
	// Faults is an optional cluster-wide fault-injection schedule;
	// queries may override it per QueryOptions. Nil (or inactive) means
	// every resilience hook stays off the execution hot path.
	Faults *FaultPlan
}

// DefaultConfig mirrors the paper's benchmark environment: 9 workers,
// 6-core Xeons, Gigabit Ethernet.
func DefaultConfig() Config {
	return Config{
		Workers:           9,
		DefaultPartitions: 18,
		Cost:              DefaultCostModel(),
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Workers <= 0 {
		return fmt.Errorf("cluster: Workers must be positive, got %d", c.Workers)
	}
	if c.DefaultPartitions <= 0 {
		return fmt.Errorf("cluster: DefaultPartitions must be positive, got %d", c.DefaultPartitions)
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	return nil
}

// Cluster is the simulated cluster. It is safe for concurrent use by
// multiple queries, each carrying its own Clock.
type Cluster struct {
	cfg Config
}

// New returns a cluster with the given configuration. A zero-valued
// Cost field is replaced with DefaultCostModel so partially specified
// configs still price work, and a zero DefaultPartitions scales to
// ScalePartitions(Workers).
func New(cfg Config) (*Cluster, error) {
	if cfg.DefaultPartitions == 0 && cfg.Workers > 0 {
		cfg.DefaultPartitions = ScalePartitions(cfg.Workers)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Cost == (CostModel{}) {
		cfg.Cost = DefaultCostModel()
	}
	return &Cluster{cfg: cfg}, nil
}

// ScalePartitions picks a sensible default partition count for a
// cluster of the given worker count: two waves of tasks per simulated
// worker (Spark's guidance of 2-3x the core count), deterministic
// across hosts so simulated placements — and therefore benchmark
// numbers — do not depend on the machine running the simulation.
func ScalePartitions(workers int) int {
	return 2 * workers
}

// MustNew is New that panics on config errors; for tests and fixtures.
func MustNew(cfg Config) *Cluster {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cluster's configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Workers returns the number of simulated worker machines.
func (c *Cluster) Workers() int { return c.cfg.Workers }

// DefaultPartitions returns the default partition count for datasets.
func (c *Cluster) DefaultPartitions() int { return c.cfg.DefaultPartitions }

// TaskStats records the priced work one task performed. Tasks fill this
// in; the stage scheduler converts it to virtual time.
type TaskStats struct {
	// DiskBytes read from (simulated) HDFS or local disk.
	DiskBytes int64
	// NetBytes sent over the network (shuffle writes, broadcast sends).
	NetBytes int64
	// Rows processed in memory by relational operators.
	Rows int64
	// Seeks counts remote key-value point lookups (Rya/Accumulo).
	Seeks int64
	// KVScanBytes counts bytes streamed from KV range scans.
	KVScanBytes int64
}

// Add accumulates o into s.
func (s *TaskStats) Add(o TaskStats) {
	s.DiskBytes += o.DiskBytes
	s.NetBytes += o.NetBytes
	s.Rows += o.Rows
	s.Seeks += o.Seeks
	s.KVScanBytes += o.KVScanBytes
}

// RunStage executes fn once per partition with real parallelism, then
// charges the stage to clock: the given launch overhead (zero for work
// that pipelines into an open stage; a stage launch — plus possibly a
// query-start cost — at shuffle and job boundaries) plus the makespan
// of the simulated workers (tasks are assigned round-robin; each
// worker's time is the sum of its tasks' priced time; the stage takes
// as long as the slowest worker).
func (c *Cluster) RunStage(clock *Clock, launch time.Duration, name string, partitions int, fn func(part int) (TaskStats, error)) error {
	if partitions <= 0 {
		partitions = 1
	}
	stats := make([]TaskStats, partitions)
	errs := make([]error, partitions)

	par := c.cfg.MaxParallel
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > partitions {
		par = partitions
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, par)
	for i := 0; i < partitions; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			stats[i], errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("cluster: stage %q partition %d: %w", name, i, err)
		}
	}

	// Price the stage: round-robin task placement, makespan = max worker.
	workerTime := make([]time.Duration, c.cfg.Workers)
	var total TaskStats
	for i, st := range stats {
		w := i % c.cfg.Workers
		workerTime[w] += c.cfg.Cost.TaskTime(st)
		total.Add(st)
	}
	var makespan time.Duration
	for _, wt := range workerTime {
		if wt > makespan {
			makespan = wt
		}
	}
	elapsed := launch + makespan
	if clock != nil {
		clock.chargeStage(StageRecord{
			Name:     name,
			Launch:   launch,
			Tasks:    partitions,
			Elapsed:  elapsed,
			Stats:    total,
			Makespan: makespan,
		})
	}
	return nil
}

// HashPartition returns the partition index for a key hashed over n
// partitions. Every engine component uses this single function so
// co-partitioned datasets stay aligned.
func HashPartition(key uint64, n int) int {
	// Fibonacci hashing spreads dense dictionary IDs well.
	h := key * 0x9E3779B97F4A7C15
	return int(h % uint64(n))
}
