package cluster

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{"default", DefaultConfig(), false},
		{"zero workers", Config{Workers: 0, DefaultPartitions: 4}, true},
		{"negative partitions", Config{Workers: 4, DefaultPartitions: -1}, true},
		{"minimal", Config{Workers: 1, DefaultPartitions: 1}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.cfg.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() err = %v, wantErr %v", err, tt.wantErr)
			}
			_, err = New(tt.cfg)
			if (err != nil) != tt.wantErr {
				t.Errorf("New() err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestZeroDefaultPartitionsScales(t *testing.T) {
	c, err := New(Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := c.DefaultPartitions(), ScalePartitions(4); got != want {
		t.Errorf("DefaultPartitions = %d, want %d", got, want)
	}
	// The paper's topology: ScalePartitions must reproduce the 18
	// partitions DefaultConfig documents for 9 workers.
	if got := ScalePartitions(DefaultConfig().Workers); got != DefaultConfig().DefaultPartitions {
		t.Errorf("ScalePartitions(9) = %d, want %d", got, DefaultConfig().DefaultPartitions)
	}
}

func TestRunStageExecutesAllPartitions(t *testing.T) {
	c := MustNew(Config{Workers: 3, DefaultPartitions: 6})
	var count atomic.Int64
	clock := NewClock()
	err := c.RunStage(clock, 0, "count", 10, func(part int) (TaskStats, error) {
		count.Add(1)
		return TaskStats{Rows: 100}, nil
	})
	if err != nil {
		t.Fatalf("RunStage: %v", err)
	}
	if count.Load() != 10 {
		t.Errorf("executed %d tasks, want 10", count.Load())
	}
	stages := clock.Stages()
	if len(stages) != 1 {
		t.Fatalf("stages = %d, want 1", len(stages))
	}
	if stages[0].Stats.Rows != 1000 {
		t.Errorf("total rows = %d, want 1000", stages[0].Stats.Rows)
	}
}

func TestRunStagePropagatesError(t *testing.T) {
	c := MustNew(Config{Workers: 2, DefaultPartitions: 2})
	boom := errors.New("boom")
	err := c.RunStage(NewClock(), 0, "failing", 4, func(part int) (TaskStats, error) {
		if part == 2 {
			return TaskStats{}, boom
		}
		return TaskStats{}, nil
	})
	if err == nil {
		t.Fatalf("RunStage succeeded, want error")
	}
	if !errors.Is(err, boom) {
		t.Errorf("error %v does not wrap the task error", err)
	}
	if !strings.Contains(err.Error(), "partition 2") {
		t.Errorf("error %v does not name the failing partition", err)
	}
}

func TestStageMakespanUsesSlowestWorker(t *testing.T) {
	cost := CostModel{RowTime: time.Millisecond} // 1ms per row, everything else free
	c := MustNew(Config{Workers: 2, DefaultPartitions: 2, Cost: cost})
	clock := NewClock()
	// 2 partitions on 2 workers: partition 0 -> worker 0 (10 rows),
	// partition 1 -> worker 1 (1 row). Makespan = 10ms, not 11ms.
	err := c.RunStage(clock, 0, "skewed", 2, func(part int) (TaskStats, error) {
		if part == 0 {
			return TaskStats{Rows: 10}, nil
		}
		return TaskStats{Rows: 1}, nil
	})
	if err != nil {
		t.Fatalf("RunStage: %v", err)
	}
	got := clock.Elapsed()
	if got != 10*time.Millisecond {
		t.Errorf("makespan = %v, want 10ms (slowest worker only)", got)
	}
}

func TestStageLaunchOverhead(t *testing.T) {
	cost := CostModel{RowTime: time.Nanosecond}
	c := MustNew(Config{Workers: 1, DefaultPartitions: 1, Cost: cost})
	noop := func(part int) (TaskStats, error) { return TaskStats{}, nil }

	for _, launch := range []time.Duration{0, 100 * time.Millisecond, time.Second} {
		clock := NewClock()
		if err := c.RunStage(clock, launch, "launch", 1, noop); err != nil {
			t.Fatalf("RunStage: %v", err)
		}
		if got := clock.Elapsed(); got != launch {
			t.Errorf("launch %v: elapsed = %v", launch, got)
		}
		if rec := clock.Stages()[0]; rec.Launch != launch {
			t.Errorf("recorded launch = %v, want %v", rec.Launch, launch)
		}
	}
}

func TestCostModelTaskTime(t *testing.T) {
	m := CostModel{
		DiskBytesPerSec:    1 << 20, // 1 MiB/s
		NetworkBytesPerSec: 2 << 20,
		RowTime:            time.Microsecond,
		SeekTime:           time.Millisecond,
		KVScanBytesPerSec:  1 << 20,
	}
	tests := []struct {
		name  string
		stats TaskStats
		want  time.Duration
	}{
		{"disk only", TaskStats{DiskBytes: 1 << 20}, time.Second},
		{"net only", TaskStats{NetBytes: 2 << 20}, time.Second},
		{"rows only", TaskStats{Rows: 1000}, time.Millisecond},
		{"seeks only", TaskStats{Seeks: 5}, 5 * time.Millisecond},
		{"kv scan only", TaskStats{KVScanBytes: 1 << 20}, time.Second},
		{"zero", TaskStats{}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := m.TaskTime(tt.stats); got != tt.want {
				t.Errorf("TaskTime(%+v) = %v, want %v", tt.stats, got, tt.want)
			}
		})
	}
}

// TestSkewedShuffleJoinTime pins the three pricing regimes of the
// skew-aware shuffle: fair-share skew prices like a plain shuffle, a
// hot key below the salt bound serializes one worker (priced on the
// hot fraction), and a saltable hot key balances again at a modest
// replication surcharge — strictly cheaper than serializing, strictly
// dearer than no skew at all.
func TestSkewedShuffleJoinTime(t *testing.T) {
	m := DefaultCostModel()
	const workers = 8
	const bytes = 64 << 20
	const rows = 4_000_000

	plain := m.ShuffleJoinTime(bytes, rows, workers)
	if got := m.SkewedShuffleJoinTime(bytes, rows, workers, 1.0/float64(workers), 0.2); got != plain {
		t.Errorf("fair-share skew priced %v, want plain shuffle %v", got, plain)
	}
	serialized := m.SkewedShuffleJoinTime(bytes, rows, workers, 0.15, 0.2)
	if serialized <= plain {
		t.Errorf("hot key below salt bound priced %v, want above plain %v", serialized, plain)
	}
	salted := m.SkewedShuffleJoinTime(bytes, rows, workers, 0.8, 0.2)
	hotSerialized := m.SkewedShuffleJoinTime(bytes, rows, workers, 0.8, 0) // salting disabled
	if salted >= hotSerialized {
		t.Errorf("salted hot key priced %v, want below serialized %v", salted, hotSerialized)
	}
	if salted <= plain {
		t.Errorf("salted shuffle priced %v, want above plain %v (replication is not free)", salted, plain)
	}
}

func TestTaskStatsAdd(t *testing.T) {
	a := TaskStats{DiskBytes: 1, NetBytes: 2, Rows: 3, Seeks: 4, KVScanBytes: 5}
	b := TaskStats{DiskBytes: 10, NetBytes: 20, Rows: 30, Seeks: 40, KVScanBytes: 50}
	a.Add(b)
	want := TaskStats{DiskBytes: 11, NetBytes: 22, Rows: 33, Seeks: 44, KVScanBytes: 55}
	if a != want {
		t.Errorf("Add result = %+v, want %+v", a, want)
	}
}

func TestClockAccumulatesSequentially(t *testing.T) {
	clock := NewClock()
	clock.Charge("phase 1", time.Second)
	clock.Charge("phase 2", 2*time.Second)
	if got := clock.Elapsed(); got != 3*time.Second {
		t.Errorf("Elapsed() = %v, want 3s", got)
	}
	if len(clock.Stages()) != 2 {
		t.Errorf("stages = %d, want 2", len(clock.Stages()))
	}
	clock.Reset()
	if clock.Elapsed() != 0 || len(clock.Stages()) != 0 {
		t.Errorf("Reset did not clear the clock")
	}
}

func TestClockTrace(t *testing.T) {
	clock := NewClock()
	clock.Charge("load vp tables", 1500*time.Millisecond)
	trace := clock.Trace()
	if !strings.Contains(trace, "load vp tables") {
		t.Errorf("trace missing stage name:\n%s", trace)
	}
	if !strings.Contains(trace, "total:") {
		t.Errorf("trace missing total:\n%s", trace)
	}
}

func TestHashPartitionInRangeAndDeterministic(t *testing.T) {
	f := func(key uint64, nRaw uint8) bool {
		n := int(nRaw%32) + 1
		p := HashPartition(key, n)
		return p >= 0 && p < n && p == HashPartition(key, n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestHashPartitionSpreadsDenseKeys(t *testing.T) {
	// Dictionary IDs are dense integers; the partitioner must not send
	// them all to a handful of partitions.
	const n = 16
	counts := make([]int, n)
	for key := uint64(1); key <= 16000; key++ {
		counts[HashPartition(key, n)]++
	}
	for p, c := range counts {
		if c < 500 || c > 1500 {
			t.Errorf("partition %d has %d of 16000 keys; distribution too skewed", p, c)
		}
	}
}

func TestHumanBytes(t *testing.T) {
	tests := []struct {
		n    int64
		want string
	}{
		{512, "512B"},
		{2048, "2.00KiB"},
		{3 << 20, "3.00MiB"},
		{5 << 30, "5.00GiB"},
	}
	for _, tt := range tests {
		if got := humanBytes(tt.n); got != tt.want {
			t.Errorf("humanBytes(%d) = %q, want %q", tt.n, got, tt.want)
		}
	}
}

func TestRunStageZeroPartitions(t *testing.T) {
	c := MustNew(Config{Workers: 2, DefaultPartitions: 2})
	ran := 0
	err := c.RunStage(nil, 0, "degenerate", 0, func(part int) (TaskStats, error) {
		ran++
		return TaskStats{}, nil
	})
	if err != nil {
		t.Fatalf("RunStage: %v", err)
	}
	if ran != 1 {
		t.Errorf("zero-partition stage ran %d tasks, want 1", ran)
	}
}

func TestRunStageParallelismBound(t *testing.T) {
	c := MustNew(Config{Workers: 4, DefaultPartitions: 4, MaxParallel: 2})
	var cur, max atomic.Int64
	err := c.RunStage(NewClock(), 0, "bounded", 8, func(part int) (TaskStats, error) {
		n := cur.Add(1)
		for {
			m := max.Load()
			if n <= m || max.CompareAndSwap(m, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return TaskStats{}, nil
	})
	if err != nil {
		t.Fatalf("RunStage: %v", err)
	}
	if max.Load() > 2 {
		t.Errorf("observed parallelism %d exceeds MaxParallel=2", max.Load())
	}
}

func ExampleCluster_RunStage() {
	c := MustNew(Config{Workers: 2, DefaultPartitions: 2, Cost: CostModel{RowTime: time.Millisecond}})
	clock := NewClock()
	_ = c.RunStage(clock, 0, "example", 2, func(part int) (TaskStats, error) {
		return TaskStats{Rows: 5}, nil
	})
	fmt.Println(clock.Elapsed())
	// Output: 5ms
}
