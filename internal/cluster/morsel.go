package cluster

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Morsel-granular stage pricing for the streaming executor. A query's
// pipelines (scan → fused filters/probes → sink) are each split into
// fixed-size morsels of priced work; SimulateMorsels list-schedules
// every morsel onto the simulated workers, so SimTime reflects actual
// worker contention across concurrent pipelines instead of the
// materialized scheduler's max-of-branches critical path. Fault
// injection prices at the same granularity: each morsel rolls its own
// attempt fates from the FaultPlan, retries back off and rotate
// workers, stragglers stretch and speculate — mirroring the
// whole-operator resilience loop, but a retry now re-runs one morsel
// of work rather than a whole operator.
//
// The simulation is a pure function of its inputs: placement is
// earliest-free-worker with deterministic tie-breaks, fault decisions
// key on (salt, pipeline, morsel, attempt), and result deliveries fold
// in completion order — so a streaming query's SimTime, first-row
// latency and recovery record are exactly reproducible.

// MorselPipeline is one pipeline's aggregate priced work, split evenly
// into morsels by the simulator.
type MorselPipeline struct {
	// Name labels the pipeline in traces and failure reports.
	Name string
	// Deps lists pipelines (by index, each < this pipeline's index)
	// whose completion gates this pipeline — hash-join build sides the
	// probe chain waits on.
	Deps []int
	// Launch is the stage-launch overhead charged once at the
	// pipeline's gate (shuffle/broadcast boundaries crossed by its
	// fused probes; zero for pure scan pipelines).
	Launch time.Duration
	// Morsels is the number of morsels the work splits into (min 1).
	Morsels int
	// Work is the pipeline's total priced work, divided evenly across
	// morsels.
	Work TaskStats
	// EmitBytes is the result payload this pipeline delivers to the
	// driver (root pipeline only; zero elsewhere). Deliveries serialize
	// at the driver, which is what makes first-row latency strictly
	// earlier than query completion whenever more than one result
	// morsel exists.
	EmitBytes int64
	// EmitRows reports whether the pipeline produces result rows at
	// all; first-row latency is only defined when it does.
	EmitRows bool
}

// MorselSimConfig configures one simulation run.
type MorselSimConfig struct {
	// Workers is the simulated worker count.
	Workers int
	// Cost prices each morsel's split of the pipeline work.
	Cost CostModel
	// Start is the query's planning charge; no morsel starts before it.
	Start time.Duration
	// Faults, when active, prices per-morsel fault injection; FaultSalt
	// decorrelates schedules across queries.
	Faults    *FaultPlan
	FaultSalt uint64
	// MaxAttempts bounds attempts per morsel; exhausting it fails the
	// simulation with a *MorselFailedError.
	MaxAttempts int
	// RetryBackoff is the base virtual backoff after a failed attempt,
	// doubling per failure up to MaxBackoff.
	RetryBackoff time.Duration
	MaxBackoff   time.Duration
	// SpecFactor is the straggler-detection multiple (0 disables
	// speculation).
	SpecFactor float64
}

// MorselRecovery aggregates the simulation's fault-recovery activity,
// mirroring the materialized executor's resilience record.
type MorselRecovery struct {
	Attempts, Retries, Stragglers int64
	SpecLaunched, SpecWins        int64
	ChecksumFailures, Recomputes  int64
	Recovery                      time.Duration
}

// MorselSimResult is the priced outcome of one streaming execution.
type MorselSimResult struct {
	// Done is the simulated completion time of the whole query.
	Done time.Duration
	// FirstEmit is when the first result morsel finished delivering to
	// the driver (zero when no pipeline emits rows).
	FirstEmit time.Duration
	// PipelineDone records each pipeline's completion time.
	PipelineDone []time.Duration
	// Recovery is the fault-injection record (zero-valued without an
	// active fault plan).
	Recovery MorselRecovery
}

// MorselAttempt is one attempt of one morsel on the virtual timeline.
type MorselAttempt struct {
	Attempt     int
	Worker      int
	Start, End  time.Duration
	Outcome     string
	Speculative bool
}

// MorselFailedError reports a morsel that exhausted its attempt budget
// under fault injection.
type MorselFailedError struct {
	Pipeline string
	Morsel   int
	Attempts []MorselAttempt
}

// Error implements error.
func (e *MorselFailedError) Error() string {
	return fmt.Sprintf("cluster: pipeline %q morsel %d failed permanently after %d attempts",
		e.Pipeline, e.Morsel, len(e.Attempts))
}

// morselSpecBase offsets speculative duplicates into their own fault
// decision stream, matching the materialized executor's convention.
const morselSpecBase = 1 << 16

// morselKey derives the fault key of one morsel, decorrelated across
// pipelines and queries.
func morselKey(salt uint64, pipeline, morsel int) uint64 {
	return mix64(salt, uint64(pipeline)<<20|uint64(morsel), 0x5EED)
}

// splitWork divides a pipeline's total priced time into m near-equal
// morsel durations (the first morsel absorbs the rounding remainder).
func splitWork(total time.Duration, m int) (base, first time.Duration) {
	if m < 1 {
		m = 1
	}
	base = total / time.Duration(m)
	first = total - base*time.Duration(m-1)
	return base, first
}

// SimulateMorsels list-schedules every pipeline's morsels onto the
// simulated workers and returns the priced outcome. Pipelines must be
// topologically ordered (each Deps entry refers to an earlier index).
// On a *MorselFailedError the partial result is returned alongside the
// error: its Recovery record holds the attempts spent before the
// abort, which callers aggregate exactly like a successful run's.
func SimulateMorsels(pipelines []MorselPipeline, cfg MorselSimConfig) (*MorselSimResult, error) {
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	free := make([]time.Duration, workers)
	for i := range free {
		free[i] = cfg.Start
	}
	res := &MorselSimResult{PipelineDone: make([]time.Duration, len(pipelines))}
	faults := cfg.Faults
	if !faults.Active() {
		faults = nil
	}

	type emitRec struct {
		done    time.Duration
		deliver time.Duration
	}
	var emits []emitRec

	for pi, p := range pipelines {
		gate := cfg.Start
		for _, d := range p.Deps {
			if d < 0 || d >= pi {
				return nil, fmt.Errorf("cluster: pipeline %d dep %d not topologically ordered", pi, d)
			}
			if res.PipelineDone[d] > gate {
				gate = res.PipelineDone[d]
			}
		}
		gate += p.Launch

		m := p.Morsels
		if m < 1 {
			m = 1
		}
		base, firstDur := splitWork(cfg.Cost.TaskTime(p.Work), m)
		var emitPer int64
		if p.EmitBytes > 0 {
			emitPer = p.EmitBytes / int64(m)
		}

		var done time.Duration
		for mi := 0; mi < m; mi++ {
			dur := base
			if mi == 0 {
				dur = firstDur
			}
			if dur <= 0 {
				// Like the materialized scheduler, zero-cost work still
				// completes strictly after it starts.
				dur = 1
			}
			// Earliest-free worker, lowest index on ties: deterministic
			// list scheduling.
			w := 0
			for k := 1; k < workers; k++ {
				if free[k] < free[w] {
					w = k
				}
			}
			start := free[w]
			if gate > start {
				start = gate
			}

			var mDone time.Duration
			if faults == nil {
				mDone = start + dur
			} else {
				var err error
				mDone, err = runMorselResilient(faults, cfg, morselKey(cfg.FaultSalt, pi, mi), start, dur, workers, p.Name, mi, &res.Recovery)
				if err != nil {
					return res, err
				}
			}
			free[w] = mDone
			if mDone > done {
				done = mDone
			}
			if p.EmitRows {
				var deliver time.Duration
				if emitPer > 0 && cfg.Cost.NetworkBytesPerSec > 0 {
					deliver = time.Duration(float64(emitPer) / cfg.Cost.NetworkBytesPerSec * float64(time.Second))
				}
				if deliver <= 0 {
					deliver = 1
				}
				emits = append(emits, emitRec{done: mDone, deliver: deliver})
			}
		}

		// Corrupted pipeline delivery: the consumer's checksum catches
		// it and one morsel's work is recomputed from lineage before
		// dependents (or the driver) read the output.
		if faults != nil && faults.CorruptDelivery(morselKey(cfg.FaultSalt, pi, 1<<19)) {
			res.Recovery.ChecksumFailures++
			res.Recovery.Recomputes++
			penalty := base
			if penalty <= 0 {
				penalty = firstDur
			}
			if penalty <= 0 {
				penalty = 1
			}
			done += penalty
			res.Recovery.Recovery += penalty
		}

		res.PipelineDone[pi] = done
		if done > res.Done {
			res.Done = done
		}
	}

	// Result deliveries serialize at the driver in completion order.
	sort.Slice(emits, func(i, j int) bool { return emits[i].done < emits[j].done })
	var driverFree time.Duration
	for i, e := range emits {
		start := e.done
		if driverFree > start {
			start = driverFree
		}
		driverFree = start + e.deliver
		if i == 0 {
			res.FirstEmit = driverFree
		}
	}
	if driverFree > res.Done {
		res.Done = driverFree
	}
	return res, nil
}

// runMorselResilient prices one morsel's attempt loop under the fault
// plan: failed attempts consume their time and back off, stragglers
// stretch and may speculate, and exhaustion fails the simulation. The
// recovery record accumulates into rec.
func runMorselResilient(fp *FaultPlan, cfg MorselSimConfig, key uint64, start, dur time.Duration, workers int, name string, morsel int, rec *MorselRecovery) (time.Duration, error) {
	maxAttempts := cfg.MaxAttempts
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	var trace []MorselAttempt
	vstart := start
	for attempt := 1; ; attempt++ {
		dec := fp.Decide(key, attempt, vstart, workers)
		rec.Attempts++
		if dec.Fail {
			outcome := "failed"
			if dec.Outage {
				outcome = "worker-outage"
			}
			trace = append(trace, MorselAttempt{Attempt: attempt, Worker: dec.Worker, Start: vstart, End: vstart + dur, Outcome: outcome})
			if attempt >= maxAttempts {
				return 0, &MorselFailedError{Pipeline: name, Morsel: morsel, Attempts: trace}
			}
			rec.Retries++
			wait := cfg.RetryBackoff << (attempt - 1)
			if wait > cfg.MaxBackoff || wait <= 0 {
				wait = cfg.MaxBackoff
			}
			rec.Recovery += dur + wait
			vstart += dur + wait
			continue
		}
		done := vstart + dur
		if dec.DelayFactor > 1 {
			rec.Stragglers++
			slowDone := vstart + time.Duration(float64(dur)*dec.DelayFactor)
			done = slowDone
			if sf := cfg.SpecFactor; sf > 0 && dec.DelayFactor > sf {
				specStart := vstart + time.Duration(float64(dur)*sf)
				specDec := fp.Decide(key, attempt+morselSpecBase, specStart, workers)
				rec.SpecLaunched++
				rec.Attempts++
				if !specDec.Fail {
					specDone := specStart + time.Duration(float64(dur)*math.Max(specDec.DelayFactor, 1))
					if specDone < slowDone {
						done = specDone
						rec.SpecWins++
					}
				}
			}
			rec.Recovery += done - (vstart + dur)
		}
		return done, nil
	}
}
