package cluster

import (
	"errors"
	"testing"
	"time"
)

// simCfg builds a config whose cost model prices rows only, making
// morsel durations easy to reason about: 1000 rows = 120µs.
func simCfg(workers int) MorselSimConfig {
	return MorselSimConfig{
		Workers:      workers,
		Cost:         DefaultCostModel(),
		Start:        10 * time.Millisecond,
		MaxAttempts:  4,
		RetryBackoff: 50 * time.Millisecond,
		MaxBackoff:   2 * time.Second,
		SpecFactor:   2.0,
	}
}

func TestSimulateMorselsContention(t *testing.T) {
	cfg := simCfg(2)
	// 4 equal morsels on 2 workers: two waves, so completion is
	// start + 2×morselDur, not start + morselDur (max-of-branches would
	// claim the latter).
	work := TaskStats{Rows: 4000}
	per := cfg.Cost.TaskTime(TaskStats{Rows: 1000})
	res, err := SimulateMorsels([]MorselPipeline{{Name: "scan", Morsels: 4, Work: work}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.Start + 2*per
	if res.Done != want {
		t.Fatalf("Done = %v, want %v (two waves of %v after %v start)", res.Done, want, per, cfg.Start)
	}
}

func TestSimulateMorselsDepsAndLaunch(t *testing.T) {
	cfg := simCfg(4)
	launch := 150 * time.Millisecond
	pipes := []MorselPipeline{
		{Name: "build", Morsels: 2, Work: TaskStats{Rows: 2000}},
		{Name: "probe", Deps: []int{0}, Launch: launch, Morsels: 2, Work: TaskStats{Rows: 2000}},
	}
	res, err := SimulateMorsels(pipes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	per := cfg.Cost.TaskTime(TaskStats{Rows: 1000})
	buildDone := cfg.Start + per
	want := buildDone + launch + per
	if res.PipelineDone[0] != buildDone || res.Done != want {
		t.Fatalf("build done %v (want %v), query done %v (want %v)",
			res.PipelineDone[0], buildDone, res.Done, want)
	}
}

func TestSimulateMorselsFirstEmitBeforeDone(t *testing.T) {
	cfg := simCfg(4)
	res, err := SimulateMorsels([]MorselPipeline{{
		Name: "root", Morsels: 8, Work: TaskStats{Rows: 8000},
		EmitBytes: 8 << 20, EmitRows: true,
	}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstEmit <= 0 || res.FirstEmit >= res.Done {
		t.Fatalf("FirstEmit %v must fall strictly inside (0, Done=%v)", res.FirstEmit, res.Done)
	}
}

func TestSimulateMorselsNoEmitNoFirstRow(t *testing.T) {
	cfg := simCfg(2)
	res, err := SimulateMorsels([]MorselPipeline{{Name: "build", Morsels: 2, Work: TaskStats{Rows: 100}}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstEmit != 0 {
		t.Fatalf("non-emitting plan reported FirstEmit %v", res.FirstEmit)
	}
}

func TestSimulateMorselsFaultsDeterministic(t *testing.T) {
	cfg := simCfg(4)
	cfg.Faults = &FaultPlan{Seed: 7, FailRate: 0.3, StragglerRate: 0.2, StragglerFactor: 6, CorruptRate: 0.1}
	cfg.FaultSalt = 0xABCD
	pipes := []MorselPipeline{
		{Name: "build", Morsels: 6, Work: TaskStats{Rows: 6000}},
		{Name: "probe", Deps: []int{0}, Launch: 150 * time.Millisecond, Morsels: 6,
			Work: TaskStats{Rows: 6000}, EmitBytes: 1 << 20, EmitRows: true},
	}
	a, err := SimulateMorsels(pipes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateMorsels(pipes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Done != b.Done || a.FirstEmit != b.FirstEmit || a.Recovery != b.Recovery {
		t.Fatalf("same inputs diverged: %+v vs %+v", a, b)
	}
	if a.Recovery.Attempts <= 12 {
		t.Errorf("30%% fail rate over 12 morsels produced no extra attempts: %+v", a.Recovery)
	}
	if a.Recovery.Retries == 0 {
		t.Errorf("expected retries under FailRate 0.3, got %+v", a.Recovery)
	}
	// A rate-only plan caps failures per task below MaxAttempts, so the
	// simulation must recover rather than abort.
	clean, err := SimulateMorsels(pipes, simCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	if a.Done <= clean.Done {
		t.Errorf("faulted run (%v) should cost more than clean run (%v)", a.Done, clean.Done)
	}
}

func TestSimulateMorselsPermanentFailure(t *testing.T) {
	cfg := simCfg(2)
	cfg.MaxAttempts = 2
	cfg.Faults = &FaultPlan{Seed: 3, FailRate: 1.0, MaxFailuresPerTask: 10}
	_, err := SimulateMorsels([]MorselPipeline{{Name: "doomed", Morsels: 2, Work: TaskStats{Rows: 100}}}, cfg)
	var mfe *MorselFailedError
	if !errors.As(err, &mfe) {
		t.Fatalf("want MorselFailedError, got %v", err)
	}
	if len(mfe.Attempts) != 2 {
		t.Fatalf("attempt trace has %d entries, want 2", len(mfe.Attempts))
	}
}

func TestSimulateMorselsBadTopology(t *testing.T) {
	if _, err := SimulateMorsels([]MorselPipeline{{Name: "x", Deps: []int{0}, Morsels: 1}}, simCfg(1)); err == nil {
		t.Fatal("self-dependency accepted")
	}
}
