package cluster

import (
	"testing"
	"time"
)

func TestFaultPlanDeterministic(t *testing.T) {
	fp := &FaultPlan{Seed: 42, FailRate: 0.3, StragglerRate: 0.2, CorruptRate: 0.25}
	for key := uint64(0); key < 200; key++ {
		for attempt := 1; attempt <= 4; attempt++ {
			a := fp.Decide(key, attempt, 100*time.Millisecond, 9)
			b := fp.Decide(key, attempt, 100*time.Millisecond, 9)
			if a != b {
				t.Fatalf("Decide(key=%d attempt=%d) not deterministic: %+v vs %+v", key, attempt, a, b)
			}
		}
		if fp.CorruptDelivery(key) != fp.CorruptDelivery(key) {
			t.Fatalf("CorruptDelivery(key=%d) not deterministic", key)
		}
	}
}

func TestFaultPlanRates(t *testing.T) {
	// Separate plans per fault class: a failed attempt never reports a
	// straggler delay, so mixing classes would undercount stragglers.
	failing := &FaultPlan{Seed: 7, FailRate: 0.25}
	straggling := &FaultPlan{Seed: 7, StragglerRate: 0.1}
	corrupting := &FaultPlan{Seed: 7, CorruptRate: 0.15}
	const n = 20000
	var fails, straggles, corrupts int
	for key := uint64(0); key < n; key++ {
		if failing.Decide(key, 1, 0, 9).Fail {
			fails++
		}
		if straggling.Decide(key, 1, 0, 9).DelayFactor > 1 {
			straggles++
		}
		if corrupting.CorruptDelivery(key) {
			corrupts++
		}
	}
	check := func(name string, got int, want float64) {
		t.Helper()
		ratio := float64(got) / n
		if ratio < want*0.8 || ratio > want*1.2 {
			t.Errorf("%s rate %.3f, want about %.3f", name, ratio, want)
		}
	}
	check("fail", fails, 0.25)
	check("straggler", straggles, 0.1)
	check("corrupt", corrupts, 0.15)
}

func TestFaultPlanSeedsDiffer(t *testing.T) {
	a := &FaultPlan{Seed: 1, FailRate: 0.3}
	b := &FaultPlan{Seed: 2, FailRate: 0.3}
	same := 0
	const n = 1000
	for key := uint64(0); key < n; key++ {
		if a.Decide(key, 1, 0, 9).Fail == b.Decide(key, 1, 0, 9).Fail {
			same++
		}
	}
	if same == n {
		t.Fatal("seeds 1 and 2 produced identical fail schedules")
	}
}

func TestFaultPlanFailureCap(t *testing.T) {
	fp := &FaultPlan{Seed: 3, FailRate: 1.0, MaxFailuresPerTask: 2}
	for key := uint64(0); key < 50; key++ {
		if !fp.Decide(key, 1, 0, 9).Fail || !fp.Decide(key, 2, 0, 9).Fail {
			t.Fatalf("key %d: FailRate=1 should fail attempts 1 and 2", key)
		}
		if fp.Decide(key, 3, 0, 9).Fail {
			t.Fatalf("key %d: attempt 3 exceeds MaxFailuresPerTask=2 yet failed", key)
		}
	}
}

func TestFaultPlanOutageWindowAndRotation(t *testing.T) {
	fp := &FaultPlan{Seed: 11, Outages: []WorkerOutage{{Worker: 2, From: 0, Until: time.Second}}}
	foundOutage := false
	for key := uint64(0); key < 100; key++ {
		d := fp.Decide(key, 1, 500*time.Millisecond, 4)
		if d.Worker == 2 {
			if !d.Fail || !d.Outage {
				t.Fatalf("key %d on dead worker 2 did not fail with outage", key)
			}
			foundOutage = true
			// A retry rotates to the next worker and must survive.
			d2 := fp.Decide(key, 2, 600*time.Millisecond, 4)
			if d2.Worker == 2 {
				t.Fatalf("key %d attempt 2 re-placed on failed worker 2", key)
			}
			if d2.Fail {
				t.Fatalf("key %d attempt 2 on live worker %d failed", key, d2.Worker)
			}
			// Past the window the dead worker is healthy again.
			d3 := fp.Decide(key, 1, 2*time.Second, 4)
			if d3.Fail {
				t.Fatalf("key %d failed on worker %d after outage window", key, d3.Worker)
			}
		} else if d.Fail {
			t.Fatalf("key %d failed on live worker %d", key, d.Worker)
		}
	}
	if !foundOutage {
		t.Fatal("no task landed on the dead worker; placement hash suspicious")
	}
}

func TestFaultPlanValidateAndActive(t *testing.T) {
	var nilPlan *FaultPlan
	if nilPlan.Active() {
		t.Fatal("nil plan reported active")
	}
	if err := nilPlan.Validate(); err != nil {
		t.Fatalf("nil plan Validate: %v", err)
	}
	if (&FaultPlan{Seed: 9}).Active() {
		t.Fatal("seed-only plan reported active")
	}
	if !(&FaultPlan{CorruptRate: 0.1}).Active() {
		t.Fatal("corrupting plan reported inactive")
	}
	bad := []FaultPlan{
		{FailRate: 1.5},
		{CorruptRate: -0.1},
		{StragglerFactor: 0.5, StragglerRate: 0.1},
		{Outages: []WorkerOutage{{Worker: -1}}},
		{Outages: []WorkerOutage{{Worker: 0, From: time.Second, Until: 0}}},
	}
	for i := range bad {
		if err := bad[i].Validate(); err == nil {
			t.Errorf("bad plan %d passed Validate", i)
		}
	}
	if _, err := New(Config{Workers: 3, DefaultPartitions: 6, Faults: &FaultPlan{FailRate: 2}}); err == nil {
		t.Fatal("cluster.New accepted invalid FaultPlan")
	}
}
