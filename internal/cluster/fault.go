package cluster

import (
	"fmt"
	"time"
)

// FaultPlan is a deterministic, seedable fault-injection schedule for
// chaos testing the execution stack. Every decision is a pure function
// of (Seed, task key, attempt number, virtual start time) — never of
// wall time, pool interleaving or call order — so a fault run is
// exactly reproducible: the same plan over the same data under the
// same FaultPlan injects the same failures at the same virtual times
// and prices the same recovery, no matter how many goroutines execute
// it.
//
// Four fault classes are supported, mirroring what a real cluster
// loses: outright task-attempt failures (FailRate), workers dead for a
// virtual-time window (Outages), stragglers whose priced time is
// multiplied (StragglerRate/StragglerFactor), and corrupted exchange
// payloads detected by the consumer's per-relation checksum
// (CorruptRate).
type FaultPlan struct {
	// Seed selects the pseudo-random schedule; two plans with different
	// seeds inject disjoint fault patterns at the same rates.
	Seed uint64
	// FailRate is the probability an eligible task attempt fails
	// outright after consuming its priced time.
	FailRate float64
	// MaxFailuresPerTask caps how many attempts of one task FailRate
	// may kill (0 = DefaultMaxFailuresPerTask). The cap keeps every
	// schedule recoverable: retries beyond it only fail if they land on
	// a dead worker.
	MaxFailuresPerTask int
	// Outages lists worker-loss windows on the virtual timeline: an
	// attempt placed on a dead worker during its window fails. Retries
	// rotate to other workers and back off past the window.
	Outages []WorkerOutage
	// StragglerRate is the probability an attempt runs slow; its priced
	// time is multiplied by StragglerFactor.
	StragglerRate float64
	// StragglerFactor multiplies a straggling attempt's priced time
	// (0 = DefaultStragglerFactor; must be >= 1 otherwise).
	StragglerFactor float64
	// CorruptRate is the probability a task's first output delivery is
	// corrupted in the exchange — detected by the consumer's checksum
	// over the packed-uint64 row payload, recovered by recomputing the
	// producer from lineage. Re-deliveries are always clean.
	CorruptRate float64
}

// Fault-plan defaults.
const (
	// DefaultMaxFailuresPerTask bounds injected outright failures per
	// task so rate-based schedules stay recoverable under the executor's
	// attempt budget.
	DefaultMaxFailuresPerTask = 2
	// DefaultStragglerFactor is the priced-time multiplier of an
	// injected straggler when FaultPlan.StragglerFactor is zero.
	DefaultStragglerFactor = 6.0
)

// WorkerOutage marks one simulated worker dead for a window of virtual
// time: attempts placed on it with a virtual start in [From, Until)
// fail with a worker-outage outcome.
type WorkerOutage struct {
	// Worker is the simulated worker index (0-based).
	Worker int
	// From and Until bound the outage on the virtual timeline
	// (inclusive start, exclusive end).
	From, Until time.Duration
}

// FaultDecision is the fate of one task attempt under a FaultPlan.
type FaultDecision struct {
	// Worker is the simulated worker the attempt was placed on.
	// Consecutive attempts of one task rotate across workers, the way a
	// real scheduler avoids re-placing a retry on the machine that just
	// failed it.
	Worker int
	// Fail reports the attempt dies after consuming its priced time.
	Fail bool
	// Outage reports the failure was a worker-loss window (Fail is set
	// too); false on an injected task-level failure.
	Outage bool
	// DelayFactor multiplies the attempt's priced time; 1 for a healthy
	// attempt, StragglerFactor for an injected straggler.
	DelayFactor float64
}

// Validate reports configuration errors.
func (fp *FaultPlan) Validate() error {
	if fp == nil {
		return nil
	}
	for name, rate := range map[string]float64{
		"FailRate": fp.FailRate, "StragglerRate": fp.StragglerRate, "CorruptRate": fp.CorruptRate,
	} {
		if rate < 0 || rate > 1 {
			return fmt.Errorf("cluster: FaultPlan.%s = %g out of [0,1]", name, rate)
		}
	}
	if fp.StragglerFactor != 0 && fp.StragglerFactor < 1 {
		return fmt.Errorf("cluster: FaultPlan.StragglerFactor = %g must be >= 1", fp.StragglerFactor)
	}
	for _, o := range fp.Outages {
		if o.Worker < 0 {
			return fmt.Errorf("cluster: FaultPlan outage worker %d must be >= 0", o.Worker)
		}
		if o.Until < o.From {
			return fmt.Errorf("cluster: FaultPlan outage window [%v,%v) inverted", o.From, o.Until)
		}
	}
	return nil
}

// Active reports whether the plan injects anything at all; executors
// skip every resilience hook (checksums, attempt bookkeeping) for an
// inactive plan, keeping the fault-free hot path untouched.
func (fp *FaultPlan) Active() bool {
	return fp != nil && (fp.FailRate > 0 || len(fp.Outages) > 0 ||
		fp.StragglerRate > 0 || fp.CorruptRate > 0)
}

// maxFailures resolves the per-task injected-failure cap.
func (fp *FaultPlan) maxFailures() int {
	if fp.MaxFailuresPerTask > 0 {
		return fp.MaxFailuresPerTask
	}
	return DefaultMaxFailuresPerTask
}

// stragglerFactor resolves the straggler multiplier.
func (fp *FaultPlan) stragglerFactor() float64 {
	if fp.StragglerFactor >= 1 {
		return fp.StragglerFactor
	}
	return DefaultStragglerFactor
}

// Hash salts separating the independent decision streams.
const (
	saltPlace uint64 = iota + 1
	saltFail
	saltStraggle
	saltCorrupt
)

// Decide returns the fate of one attempt of a task: its worker
// placement, whether it fails (injected or by landing on a worker that
// is dead at start), and its straggler delay factor. attempt is
// 1-based; workers is the cluster's worker count.
func (fp *FaultPlan) Decide(taskKey uint64, attempt int, start time.Duration, workers int) FaultDecision {
	if workers < 1 {
		workers = 1
	}
	// Consecutive attempts rotate across consecutive workers so a retry
	// never lands back on the machine that just failed it.
	base := mix64(fp.Seed, taskKey, saltPlace)
	d := FaultDecision{
		Worker:      int((base + uint64(attempt-1)) % uint64(workers)),
		DelayFactor: 1,
	}
	for _, o := range fp.Outages {
		if o.Worker == d.Worker && start >= o.From && start < o.Until {
			d.Fail, d.Outage = true, true
			return d
		}
	}
	if fp.FailRate > 0 && attempt <= fp.maxFailures() &&
		unitFloat(mix64(fp.Seed, taskKey, saltFail+uint64(attempt)<<8)) < fp.FailRate {
		d.Fail = true
		return d
	}
	if fp.StragglerRate > 0 &&
		unitFloat(mix64(fp.Seed, taskKey, saltStraggle+uint64(attempt)<<8)) < fp.StragglerRate {
		d.DelayFactor = fp.stragglerFactor()
	}
	return d
}

// CorruptDelivery reports whether the task's first output delivery is
// corrupted in its exchange. The decision is per task, not per
// attempt: once the consumer detects the mismatch and the payload is
// recomputed from lineage, the re-delivery is clean.
func (fp *FaultPlan) CorruptDelivery(taskKey uint64) bool {
	return fp.CorruptRate > 0 &&
		unitFloat(mix64(fp.Seed, taskKey, saltCorrupt)) < fp.CorruptRate
}

// mix64 is a splitmix64-style finalizer over the seed, task key and
// stream salt — the plan's only source of randomness.
func mix64(seed, key, salt uint64) uint64 {
	x := seed ^ key*0x9E3779B97F4A7C15 ^ salt*0xD6E8FEB86659FD93
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// unitFloat maps a hash to [0, 1).
func unitFloat(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}
