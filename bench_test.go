package repro

// Benchmarks regenerating the paper's evaluation artifacts, one per
// table and figure, plus the DESIGN.md ablations and micro-benchmarks
// of the core data structures. Each benchmark reports the simulated
// cluster time ("simms/op": the quantity comparable to the paper's
// numbers) alongside Go's wall-clock measurement of the simulation.
//
// Run with:
//
//	go test -bench=. -benchmem
//
// A shared WatDiv fixture (scale 400, extrapolated to the paper's 100M
// triples) is loaded once into all four systems on first use.

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/columnar"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/kv"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/watdiv"
)

const (
	benchScale       = 400
	benchSeed        = 42
	benchExtrapolate = 100_000_000
)

var (
	fixtureOnce sync.Once
	fixtureSys  *bench.Systems
	fixtureErr  error
)

func systems(b *testing.B) *bench.Systems {
	b.Helper()
	fixtureOnce.Do(func() {
		g := watdiv.MustGenerate(watdiv.Config{Scale: benchScale, Seed: benchSeed})
		fixtureSys, fixtureErr = bench.LoadAll(g, bench.LoadOptions{
			InversePT:          true,
			ExtrapolateTriples: benchExtrapolate,
		})
	})
	if fixtureErr != nil {
		b.Fatalf("LoadAll: %v", fixtureErr)
	}
	return fixtureSys
}

// reportSim attaches the simulated time as a custom metric.
func reportSim(b *testing.B, total time.Duration, n int) {
	b.Helper()
	b.ReportMetric(float64(total.Milliseconds())/float64(n), "simms/op")
}

// BenchmarkTable1Loading regenerates Table 1: it loads the WatDiv
// dataset into all four systems and reports each system's simulated
// loading time.
func BenchmarkTable1Loading(b *testing.B) {
	g := watdiv.MustGenerate(watdiv.Config{Scale: benchScale, Seed: benchSeed})
	b.ResetTimer()
	var lastSim time.Duration
	for i := 0; i < b.N; i++ {
		sys, err := bench.LoadAll(g, bench.LoadOptions{ExtrapolateTriples: benchExtrapolate})
		if err != nil {
			b.Fatal(err)
		}
		lastSim = 0
		for _, row := range sys.Loads() {
			lastSim += row.LoadTime
		}
	}
	reportSim(b, lastSim*time.Duration(b.N), b.N)
}

// BenchmarkFigure2MixedVsVP regenerates Figure 2: the 20 WatDiv queries
// on PRoST under VP-only and mixed strategies.
func BenchmarkFigure2MixedVsVP(b *testing.B) {
	sys := systems(b)
	queries := watdiv.BasicQuerySet()
	b.ResetTimer()
	var sim time.Duration
	for i := 0; i < b.N; i++ {
		fig, err := sys.Figure2(queries)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range fig.Series {
			for _, v := range s.Values {
				sim += v
			}
		}
	}
	reportSim(b, sim, b.N)
}

// BenchmarkFigure3Systems regenerates Figure 3, with one sub-benchmark
// per system running the full 20-query set.
func BenchmarkFigure3Systems(b *testing.B) {
	sys := systems(b)
	queries := watdiv.BasicQuerySet()
	for _, name := range bench.SystemNames() {
		b.Run(name, func(b *testing.B) {
			var sim time.Duration
			for i := 0; i < b.N; i++ {
				for _, q := range queries {
					out, err := sys.RunOn(name, q.Parsed)
					if err != nil {
						b.Fatal(err)
					}
					sim += out.SimTime
				}
			}
			reportSim(b, sim, b.N)
		})
	}
}

// BenchmarkTable2Averages regenerates Table 2 (group averages over a
// full Figure 3 run).
func BenchmarkTable2Averages(b *testing.B) {
	sys := systems(b)
	queries := watdiv.BasicQuerySet()
	b.ResetTimer()
	var sim time.Duration
	for i := 0; i < b.N; i++ {
		fig, err := sys.Figure3(queries)
		if err != nil {
			b.Fatal(err)
		}
		tbl := bench.Table2(fig, queries)
		if len(tbl.Rows) != 4 {
			b.Fatalf("Table 2 has %d groups", len(tbl.Rows))
		}
		for _, s := range fig.Series {
			for _, v := range s.Values {
				sim += v
			}
		}
	}
	reportSim(b, sim, b.N)
}

// BenchmarkAblationJoinOrder measures the §3.3 statistics-based node
// ordering against naive written-order execution (ablation A1).
func BenchmarkAblationJoinOrder(b *testing.B) {
	sys := systems(b)
	queries := watdiv.BasicQuerySet()
	b.ResetTimer()
	var sim time.Duration
	for i := 0; i < b.N; i++ {
		fig, err := sys.AblationJoinOrder(queries)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range fig.Series {
			for _, v := range s.Values {
				sim += v
			}
		}
	}
	reportSim(b, sim, b.N)
}

// BenchmarkAblationBroadcast measures Catalyst-style broadcast-join
// selection on versus off (ablation A2).
func BenchmarkAblationBroadcast(b *testing.B) {
	sys := systems(b)
	queries := watdiv.BasicQuerySet()
	b.ResetTimer()
	var sim time.Duration
	for i := 0; i < b.N; i++ {
		fig, err := sys.AblationBroadcast(queries)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range fig.Series {
			for _, v := range s.Values {
				sim += v
			}
		}
	}
	reportSim(b, sim, b.N)
}

// BenchmarkExtensionInversePT measures the future-work object-keyed
// Property Table on object-star queries (extension E1).
func BenchmarkExtensionInversePT(b *testing.B) {
	sys := systems(b)
	queries := bench.ObjectStarQueries()
	b.ResetTimer()
	var sim time.Duration
	for i := 0; i < b.N; i++ {
		fig, err := sys.ExtensionInversePT(queries)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range fig.Series {
			for _, v := range s.Values {
				sim += v
			}
		}
	}
	reportSim(b, sim, b.N)
}

// BenchmarkQueryPerShape runs one representative query per WatDiv shape
// on PRoST's mixed strategy.
func BenchmarkQueryPerShape(b *testing.B) {
	sys := systems(b)
	for _, name := range []string{"C2", "F3", "L4", "S2"} {
		q, err := watdiv.QueryByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			var sim time.Duration
			for i := 0; i < b.N; i++ {
				out, err := sys.RunOn(bench.SysPRoST, q.Parsed)
				if err != nil {
					b.Fatal(err)
				}
				sim += out.SimTime
			}
			reportSim(b, sim, b.N)
		})
	}
}

// --- micro-benchmarks of the substrates -----------------------------

// BenchmarkSPARQLParse measures the SPARQL parser on the largest
// benchmark query.
func BenchmarkSPARQLParse(b *testing.B) {
	q, err := watdiv.QueryByName("C1")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sparql.Parse(q.Text); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNTriplesParse measures the N-Triples reader.
func BenchmarkNTriplesParse(b *testing.B) {
	g := watdiv.MustGenerate(watdiv.Config{Scale: 200, Seed: 1})
	var sb strings.Builder
	if err := rdf.WriteNTriples(&sb, g); err != nil {
		b.Fatal(err)
	}
	doc := sb.String()
	b.SetBytes(int64(len(doc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rdf.ParseNTriples(doc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkColumnarRLE measures the Parquet-lite codec on a NULL-dense
// Property Table column.
func BenchmarkColumnarRLE(b *testing.B) {
	vals := make([]rdf.ID, 100_000)
	for i := 0; i < len(vals); i += 50 {
		vals[i] = rdf.ID(i + 1)
	}
	b.SetBytes(int64(len(vals) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := columnar.EncodeIDs(vals)
		if _, err := c.Decode(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineShuffleJoin measures a 10k×10k shuffle hash join on
// the simulated cluster.
func BenchmarkEngineShuffleJoin(b *testing.B) {
	c := cluster.MustNew(cluster.Config{Workers: 4, DefaultPartitions: 8})
	left := make([]engine.Row, 10_000)
	right := make([]engine.Row, 10_000)
	for i := range left {
		left[i] = engine.Row{rdf.ID(i + 1), rdf.ID(i%100 + 1)}
		right[i] = engine.Row{rdf.ID(i%100 + 1), rdf.ID(i + 1)}
	}
	l, err := engine.Partition(engine.Schema{"a", "b"}, left, "a", 8)
	if err != nil {
		b.Fatal(err)
	}
	r, err := engine.Partition(engine.Schema{"b", "c"}, right, "b", 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := engine.NewExec(c, nil)
		e.BroadcastThreshold = -1
		if _, err := e.Join(l, r, "bench"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPTScan measures a Property Table star scan on PRoST.
func BenchmarkPTScan(b *testing.B) {
	sys := systems(b)
	q, err := watdiv.QueryByName("S2")
	if err != nil {
		b.Fatal(err)
	}
	tree, err := sys.PRoST.Translate(q.Parsed, core.StrategyMixed)
	if err != nil {
		b.Fatal(err)
	}
	if tree.Root().Kind != core.NodePT {
		b.Fatalf("S2 did not translate to a PT node:\n%s", tree)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.PRoST.Query(q.Parsed, core.QueryOptions{Strategy: core.StrategyMixed}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKVScanPrefix measures mini-Accumulo prefix scans (Rya's
// lookup primitive).
func BenchmarkKVScanPrefix(b *testing.B) {
	st := kv.NewStore(0)
	for i := 0; i < 100_000; i++ {
		st.Put([]byte("spo\x1fsubject"+itoa(i%1000)+"\x1fpred\x1fobj"+itoa(i)), nil)
	}
	st.Flush()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, err := st.ScanPrefix([]byte("spo\x1fsubject" + itoa(i%1000) + "\x1f"))
		if err != nil {
			b.Fatal(err)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
