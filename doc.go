// Package repro is a from-scratch Go reproduction of "PRoST: Distributed
// Execution of SPARQL Queries Using Mixed Partitioning Strategies"
// (Cossu, Färber, Lausen — EDBT 2018).
//
// The paper's system and every substrate it depends on are implemented
// under internal/ (see DESIGN.md for the inventory); cmd/ holds the
// loader, query and benchmark tools; examples/ holds runnable
// walkthroughs; and bench_test.go in this package regenerates every
// table and figure of the paper's evaluation as testing.B benchmarks.
package repro
